#include "crypto/sha_ni.h"

#include <cstdlib>

#include "common/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define UGC_X86_SHA_NI 1
#include <immintrin.h>
#endif

namespace ugc {

#if UGC_X86_SHA_NI

bool sha_ni_available() {
  static const bool available = [] {
    // UGC_DISABLE_SHA_NI forces the portable scalar rounds so one machine
    // can cover both backends (CI runs the suite once per backend).
    if (std::getenv("UGC_DISABLE_SHA_NI") != nullptr) {
      return false;
    }
    __builtin_cpu_init();
    return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
           __builtin_cpu_supports("ssse3");
  }();
  return available;
}

// Both transforms follow the canonical Intel SHA-NI block schedules
// (message quadwords rotate through four XMM registers, two rounds per
// sha256rnds2 / four per sha1rnds4). They are compiled with per-function
// target attributes so no global -msha flag is needed; callers must gate on
// sha_ni_available().

__attribute__((target("sha,sse4.1,ssse3"))) void sha256_process_blocks_ni(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  __m128i STATE0, STATE1;
  __m128i MSG, TMP;
  __m128i MSG0, MSG1, MSG2, MSG3;
  __m128i ABEF_SAVE, CDGH_SAVE;
  const __m128i MASK =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a..h} into the ABEF/CDGH register layout the instructions use.
  TMP = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  STATE1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  TMP = _mm_shuffle_epi32(TMP, 0xB1);           // CDAB
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);     // EFGH
  STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);     // ABEF
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);  // CDGH

  while (blocks > 0) {
    ABEF_SAVE = STATE0;
    CDGH_SAVE = STATE1;

    // Rounds 0-3
    MSG = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG, MASK);
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 4-7
    MSG1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 12-15
    MSG3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 16-19
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 20-23
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 24-27
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 28-31
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 32-35
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 36-39
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 40-43
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 44-47
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 48-51
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 52-55
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 56-59
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 60-63
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);

    data += 64;
    --blocks;
  }

  // Repack ABEF/CDGH back to {a..h}.
  TMP = _mm_shuffle_epi32(STATE0, 0x1B);        // FEBA
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);     // DCHG
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);  // DCBA
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

__attribute__((target("sha,sse4.1,ssse3"))) void sha1_process_blocks_ni(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  __m128i ABCD, ABCD_SAVE, E0, E0_SAVE, E1;
  __m128i MSG0, MSG1, MSG2, MSG3;
  const __m128i MASK =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);

  ABCD = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  E0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);

  while (blocks > 0) {
    ABCD_SAVE = ABCD;
    E0_SAVE = E0;

    // Rounds 0-3
    MSG0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG0, MASK);
    E0 = _mm_add_epi32(E0, MSG0);
    E1 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);

    // Rounds 4-7
    MSG1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 0);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 12-15
    MSG3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 0);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 16-19
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 20-23
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 24-27
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 1);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 28-31
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 32-35
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 1);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 36-39
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 40-43
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 44-47
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 2);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 48-51
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 52-55
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 2);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 56-59
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 60-63
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 64-67
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 3);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 68-71
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 72-75
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 3);

    // Rounds 76-79
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);

    E0 = _mm_sha1nexte_epu32(E0, E0_SAVE);
    ABCD = _mm_add_epi32(ABCD, ABCD_SAVE);

    data += 64;
    --blocks;
  }

  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), ABCD);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(E0, 3));
}

#else  // !UGC_X86_SHA_NI

bool sha_ni_available() { return false; }

void sha256_process_blocks_ni(std::uint32_t*, const std::uint8_t*,
                              std::size_t) {
  throw Error("sha256_process_blocks_ni: SHA-NI not available on this target");
}

void sha1_process_blocks_ni(std::uint32_t*, const std::uint8_t*, std::size_t) {
  throw Error("sha1_process_blocks_ni: SHA-NI not available on this target");
}

#endif

}  // namespace ugc
