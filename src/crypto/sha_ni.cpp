#include "crypto/sha_ni.h"

#include <array>
#include <cstdlib>

#include "common/error.h"

#if defined(__x86_64__) || defined(__i386__)
#define UGC_X86_SHA_NI 1
#include <immintrin.h>
#endif

namespace ugc {

#if UGC_X86_SHA_NI

bool sha_ni_available() {
  static const bool available = [] {
    // UGC_DISABLE_SHA_NI forces the portable scalar rounds so one machine
    // can cover both backends (CI runs the suite once per backend).
    if (std::getenv("UGC_DISABLE_SHA_NI") != nullptr) {
      return false;
    }
    __builtin_cpu_init();
    return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
           __builtin_cpu_supports("ssse3");
  }();
  return available;
}

// Both transforms follow the canonical Intel SHA-NI block schedules
// (message quadwords rotate through four XMM registers, two rounds per
// sha256rnds2 / four per sha1rnds4). They are compiled with per-function
// target attributes so no global -msha flag is needed; callers must gate on
// sha_ni_available().

__attribute__((target("sha,sse4.1,ssse3"))) void sha256_process_blocks_ni(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  __m128i STATE0, STATE1;
  __m128i MSG, TMP;
  __m128i MSG0, MSG1, MSG2, MSG3;
  __m128i ABEF_SAVE, CDGH_SAVE;
  const __m128i MASK =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a..h} into the ABEF/CDGH register layout the instructions use.
  TMP = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  STATE1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  TMP = _mm_shuffle_epi32(TMP, 0xB1);           // CDAB
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);     // EFGH
  STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);     // ABEF
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);  // CDGH

  while (blocks > 0) {
    ABEF_SAVE = STATE0;
    CDGH_SAVE = STATE1;

    // Rounds 0-3
    MSG = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG, MASK);
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 4-7
    MSG1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 12-15
    MSG3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 16-19
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 20-23
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 24-27
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 28-31
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 32-35
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 36-39
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 40-43
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 44-47
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 48-51
    MSG = _mm_add_epi32(
        MSG0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 52-55
    MSG = _mm_add_epi32(
        MSG1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 56-59
    MSG = _mm_add_epi32(
        MSG2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 60-63
    MSG = _mm_add_epi32(
        MSG3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);

    data += 64;
    --blocks;
  }

  // Repack ABEF/CDGH back to {a..h}.
  TMP = _mm_shuffle_epi32(STATE0, 0x1B);        // FEBA
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);     // DCHG
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);  // DCBA
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

namespace {

// Round constants packed two per quadword in schedule order (same values
// the single-stream transform embeds inline).
#define UGC_SHA256_K16                                           \
  {                                                              \
    _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL),  \
    _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL),  \
    _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL),  \
    _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL),  \
    _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL),  \
    _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL),  \
    _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL),  \
    _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL),  \
    _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL),  \
    _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL),  \
    _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL),  \
    _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL),  \
    _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL),  \
    _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL),  \
    _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL),  \
    _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL),  \
  }

// The uniform 16-group round/schedule recurrence over four rotating message
// registers, issued for two independent streams back to back — the second
// stream's instructions fill the issue slots the first stream's serial
// sha256rnds2 chain leaves idle. X must hold the (byte-swapped) message
// quadwords of both blocks on entry.
__attribute__((target("sha,sse4.1,ssse3"), always_inline)) inline void
sha256_x2_rounds(__m128i S0[2], __m128i S1[2], __m128i X[4][2]) {
  const __m128i K[16] = UGC_SHA256_K16;
  __m128i MSG[2], TMP[2];
#pragma GCC unroll 16
  for (int g = 0; g < 16; ++g) {
    const int cur = g & 3;
    const int next = (g + 1) & 3;
    const int prev = (g + 3) & 3;
    for (int j = 0; j < 2; ++j) {
      MSG[j] = _mm_add_epi32(X[cur][j], K[g]);
      S1[j] = _mm_sha256rnds2_epu32(S1[j], S0[j], MSG[j]);
      if (g >= 3 && g <= 14) {
        TMP[j] = _mm_alignr_epi8(X[cur][j], X[prev][j], 4);
        X[next][j] = _mm_add_epi32(X[next][j], TMP[j]);
        X[next][j] = _mm_sha256msg2_epu32(X[next][j], X[cur][j]);
      }
      MSG[j] = _mm_shuffle_epi32(MSG[j], 0x0E);
      S0[j] = _mm_sha256rnds2_epu32(S0[j], S1[j], MSG[j]);
      if (g >= 1 && g <= 12) {
        X[prev][j] = _mm_sha256msg1_epu32(X[prev][j], X[cur][j]);
      }
    }
  }
}

// W[i] + K[i] for the constant padding block of a 64-byte message, expanded
// once: the pad block's schedule does not depend on the hash state, so its
// compression needs only the 32 sha256rnds2 per stream and no msg1/msg2
// work at all.
const std::uint32_t* pad64_schedule() {
  static const auto table = [] {
    constexpr std::uint32_t kK[64] = {
        0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
        0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
        0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
        0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
        0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
        0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
        0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
        0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
        0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
        0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
        0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
        0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
        0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};
    std::array<std::uint32_t, 64> w{};
    w[0] = 0x80000000u;  // 0x80 marker; the rest of the block is zero
    w[15] = 512u;        // message bit length
    const auto rotr = [](std::uint32_t x, int s) {
      return (x >> s) | (x << (32 - s));
    };
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    for (int i = 0; i < 64; ++i) {
      w[i] += kK[i];
    }
    return w;
  }();
  return table.data();
}

}  // namespace

__attribute__((target("sha,sse4.1,ssse3"))) void sha256_process_block_x2_ni(
    std::uint32_t* state_a, const std::uint8_t* block_a,
    std::uint32_t* state_b, const std::uint8_t* block_b) {
  const __m128i MASK =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  std::uint32_t* states[2] = {state_a, state_b};
  const std::uint8_t* blocks[2] = {block_a, block_b};

  __m128i S0[2], S1[2], TMP[2], X[4][2], SAVE0[2], SAVE1[2];
  for (int j = 0; j < 2; ++j) {
    TMP[j] =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[j][0]));
    S1[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[j][4]));
    TMP[j] = _mm_shuffle_epi32(TMP[j], 0xB1);        // CDAB
    S1[j] = _mm_shuffle_epi32(S1[j], 0x1B);          // EFGH
    S0[j] = _mm_alignr_epi8(TMP[j], S1[j], 8);       // ABEF
    S1[j] = _mm_blend_epi16(S1[j], TMP[j], 0xF0);    // CDGH
    SAVE0[j] = S0[j];
    SAVE1[j] = S1[j];
    for (int q = 0; q < 4; ++q) {
      X[q][j] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(blocks[j] + 16 * q)),
          MASK);
    }
  }

  sha256_x2_rounds(S0, S1, X);

  for (int j = 0; j < 2; ++j) {
    S0[j] = _mm_add_epi32(S0[j], SAVE0[j]);
    S1[j] = _mm_add_epi32(S1[j], SAVE1[j]);
    TMP[j] = _mm_shuffle_epi32(S0[j], 0x1B);         // FEBA
    S1[j] = _mm_shuffle_epi32(S1[j], 0xB1);          // DCHG
    S0[j] = _mm_blend_epi16(TMP[j], S1[j], 0xF0);    // DCBA
    S1[j] = _mm_alignr_epi8(S1[j], TMP[j], 8);       // HGFE
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[j][0]), S0[j]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[j][4]), S1[j]);
  }
}

__attribute__((target("sha,sse4.1,ssse3"))) void sha256_pair_digest_x2_ni(
    const std::uint8_t* left0, const std::uint8_t* right0,
    std::uint8_t* out0, const std::uint8_t* left1, const std::uint8_t* right1,
    std::uint8_t* out1) {
  const __m128i MASK =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  const std::uint32_t* pad_wk = pad64_schedule();
  const std::uint8_t* lefts[2] = {left0, left1};
  const std::uint8_t* rights[2] = {right0, right1};
  std::uint8_t* outs[2] = {out0, out1};

  // IV in the packed ABEF/CDGH layout, then the first message block loaded
  // straight from the two input digests — no concatenation buffer.
  __m128i S0[2], S1[2], TMP[2], X[4][2], SAVE0[2], SAVE1[2];
  const __m128i IV_LO =
      _mm_set_epi32(static_cast<int>(0xa54ff53au), static_cast<int>(0x3c6ef372u),
                    static_cast<int>(0xbb67ae85u), static_cast<int>(0x6a09e667u));
  const __m128i IV_HI =
      _mm_set_epi32(static_cast<int>(0x5be0cd19u), static_cast<int>(0x1f83d9abu),
                    static_cast<int>(0x9b05688cu), static_cast<int>(0x510e527fu));
  for (int j = 0; j < 2; ++j) {
    TMP[j] = _mm_shuffle_epi32(IV_LO, 0xB1);         // CDAB
    S1[j] = _mm_shuffle_epi32(IV_HI, 0x1B);          // EFGH
    S0[j] = _mm_alignr_epi8(TMP[j], S1[j], 8);       // ABEF
    S1[j] = _mm_blend_epi16(S1[j], TMP[j], 0xF0);    // CDGH
    SAVE0[j] = S0[j];
    SAVE1[j] = S1[j];
    X[0][j] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lefts[j])), MASK);
    X[1][j] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lefts[j] + 16)),
        MASK);
    X[2][j] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rights[j])), MASK);
    X[3][j] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rights[j] + 16)),
        MASK);
  }

  sha256_x2_rounds(S0, S1, X);

  for (int j = 0; j < 2; ++j) {
    S0[j] = _mm_add_epi32(S0[j], SAVE0[j]);
    S1[j] = _mm_add_epi32(S1[j], SAVE1[j]);
    SAVE0[j] = S0[j];
    SAVE1[j] = S1[j];
  }

  // Padding block: pure rounds off the precomputed schedule.
#pragma GCC unroll 16
  for (int g = 0; g < 16; ++g) {
    const __m128i WK = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pad_wk + 4 * g));
    const __m128i WK_HI = _mm_shuffle_epi32(WK, 0x0E);
    for (int j = 0; j < 2; ++j) {
      S1[j] = _mm_sha256rnds2_epu32(S1[j], S0[j], WK);
      S0[j] = _mm_sha256rnds2_epu32(S0[j], S1[j], WK_HI);
    }
  }

  for (int j = 0; j < 2; ++j) {
    S0[j] = _mm_add_epi32(S0[j], SAVE0[j]);
    S1[j] = _mm_add_epi32(S1[j], SAVE1[j]);
    TMP[j] = _mm_shuffle_epi32(S0[j], 0x1B);         // FEBA
    S1[j] = _mm_shuffle_epi32(S1[j], 0xB1);          // DCHG
    S0[j] = _mm_blend_epi16(TMP[j], S1[j], 0xF0);    // DCBA
    S1[j] = _mm_alignr_epi8(S1[j], TMP[j], 8);       // HGFE
    // Per-word byte swap (MASK doubles as the 32-bit bswap shuffle) gives
    // the big-endian digest directly.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(outs[j]),
                     _mm_shuffle_epi8(S0[j], MASK));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(outs[j] + 16),
                     _mm_shuffle_epi8(S1[j], MASK));
  }
}

__attribute__((target("sha,sse4.1,ssse3"))) void sha1_process_blocks_ni(
    std::uint32_t* state, const std::uint8_t* data, std::size_t blocks) {
  __m128i ABCD, ABCD_SAVE, E0, E0_SAVE, E1;
  __m128i MSG0, MSG1, MSG2, MSG3;
  const __m128i MASK =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);

  ABCD = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  E0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);

  while (blocks > 0) {
    ABCD_SAVE = ABCD;
    E0_SAVE = E0;

    // Rounds 0-3
    MSG0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG0, MASK);
    E0 = _mm_add_epi32(E0, MSG0);
    E1 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);

    // Rounds 4-7
    MSG1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 0);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 12-15
    MSG3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 0);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 16-19
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 0);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 20-23
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 24-27
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 1);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 28-31
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 32-35
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 1);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 36-39
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 1);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 40-43
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 44-47
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 2);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 48-51
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 52-55
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 2);
    MSG0 = _mm_sha1msg1_epu32(MSG0, MSG1);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 56-59
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 2);
    MSG1 = _mm_sha1msg1_epu32(MSG1, MSG2);
    MSG0 = _mm_xor_si128(MSG0, MSG2);

    // Rounds 60-63
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    MSG0 = _mm_sha1msg2_epu32(MSG0, MSG3);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);
    MSG2 = _mm_sha1msg1_epu32(MSG2, MSG3);
    MSG1 = _mm_xor_si128(MSG1, MSG3);

    // Rounds 64-67
    E0 = _mm_sha1nexte_epu32(E0, MSG0);
    E1 = ABCD;
    MSG1 = _mm_sha1msg2_epu32(MSG1, MSG0);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 3);
    MSG3 = _mm_sha1msg1_epu32(MSG3, MSG0);
    MSG2 = _mm_xor_si128(MSG2, MSG0);

    // Rounds 68-71
    E1 = _mm_sha1nexte_epu32(E1, MSG1);
    E0 = ABCD;
    MSG2 = _mm_sha1msg2_epu32(MSG2, MSG1);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);
    MSG3 = _mm_xor_si128(MSG3, MSG1);

    // Rounds 72-75
    E0 = _mm_sha1nexte_epu32(E0, MSG2);
    E1 = ABCD;
    MSG3 = _mm_sha1msg2_epu32(MSG3, MSG2);
    ABCD = _mm_sha1rnds4_epu32(ABCD, E0, 3);

    // Rounds 76-79
    E1 = _mm_sha1nexte_epu32(E1, MSG3);
    E0 = ABCD;
    ABCD = _mm_sha1rnds4_epu32(ABCD, E1, 3);

    E0 = _mm_sha1nexte_epu32(E0, E0_SAVE);
    ABCD = _mm_add_epi32(ABCD, ABCD_SAVE);

    data += 64;
    --blocks;
  }

  ABCD = _mm_shuffle_epi32(ABCD, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), ABCD);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(E0, 3));
}

#else  // !UGC_X86_SHA_NI

bool sha_ni_available() { return false; }

void sha256_process_blocks_ni(std::uint32_t*, const std::uint8_t*,
                              std::size_t) {
  throw Error("sha256_process_blocks_ni: SHA-NI not available on this target");
}

void sha256_process_block_x2_ni(std::uint32_t*, const std::uint8_t*,
                                std::uint32_t*, const std::uint8_t*) {
  throw Error(
      "sha256_process_block_x2_ni: SHA-NI not available on this target");
}

void sha256_pair_digest_x2_ni(const std::uint8_t*, const std::uint8_t*,
                              std::uint8_t*, const std::uint8_t*,
                              const std::uint8_t*, std::uint8_t*) {
  throw Error(
      "sha256_pair_digest_x2_ni: SHA-NI not available on this target");
}

void sha1_process_blocks_ni(std::uint32_t*, const std::uint8_t*, std::size_t) {
  throw Error("sha1_process_blocks_ni: SHA-NI not available on this target");
}

#endif

}  // namespace ugc
