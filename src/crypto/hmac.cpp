#include "crypto/hmac.h"

#include <algorithm>
#include <array>

#include "common/error.h"

namespace ugc {

namespace {
// MD5, SHA-1, and SHA-256 share a 64-byte compression block.
constexpr std::size_t kBlockSize = 64;
}  // namespace

Bytes hmac(const HashFunction& hash, BytesView key, BytesView message) {
  const std::size_t digest_size = hash.digest_size();
  check(digest_size <= kBlockSize,
        "hmac: digest larger than the compression block");

  // Normalize the key to one block (hash oversized keys), then derive both
  // pads on the stack — the message itself is streamed through a single
  // context, never copied.
  std::array<std::uint8_t, kBlockSize> block_key{};
  if (key.size() > kBlockSize) {
    hash.hash_into(key, std::span<std::uint8_t>(block_key.data(), digest_size));
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, kBlockSize> inner_pad;
  std::array<std::uint8_t, kBlockSize> outer_pad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }

  const auto context = hash.new_context();
  std::array<std::uint8_t, kBlockSize> inner_digest;
  context->update(BytesView(inner_pad.data(), inner_pad.size()));
  context->update(message);
  context->finish(std::span<std::uint8_t>(inner_digest.data(), digest_size));

  context->reset();
  context->update(BytesView(outer_pad.data(), outer_pad.size()));
  context->update(BytesView(inner_digest.data(), digest_size));
  Bytes mac(digest_size);
  context->finish(mac);
  return mac;
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  return hmac(default_hash(), key, message);
}

}  // namespace ugc
