#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace ugc {

namespace {
// MD5, SHA-1, and SHA-256 share a 64-byte compression block.
constexpr std::size_t kBlockSize = 64;
}  // namespace

Bytes hmac(const HashFunction& hash, BytesView key, BytesView message) {
  Bytes block_key(kBlockSize, 0);
  if (key.size() > kBlockSize) {
    const Bytes hashed = hash.hash(key);
    std::copy(hashed.begin(), hashed.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  Bytes inner(kBlockSize);
  Bytes outer(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner[i] = block_key[i] ^ 0x36;
    outer[i] = block_key[i] ^ 0x5c;
  }

  append(inner, message);
  const Bytes inner_digest = hash.hash(inner);
  append(outer, inner_digest);
  return hash.hash(outer);
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  return hmac(default_hash(), key, message);
}

}  // namespace ugc
