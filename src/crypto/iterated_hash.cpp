#include "crypto/iterated_hash.h"

#include "common/error.h"

namespace ugc {

IteratedHash::IteratedHash(std::shared_ptr<const HashFunction> base,
                           std::uint64_t iterations)
    : base_(std::move(base)), iterations_(iterations) {
  check(base_ != nullptr, "IteratedHash: base hash must not be null");
  check(iterations_ >= 1, "IteratedHash: iterations must be >= 1");
}

std::size_t IteratedHash::digest_size() const noexcept {
  return base_->digest_size();
}

Bytes IteratedHash::hash(BytesView data) const {
  Bytes digest = base_->hash(data);
  for (std::uint64_t i = 1; i < iterations_; ++i) {
    digest = base_->hash(digest);
  }
  return digest;
}

std::string IteratedHash::name() const {
  return concat(base_->name(), "^", iterations_);
}

std::unique_ptr<IteratedHash> make_iterated_hash(HashAlgorithm algorithm,
                                                 std::uint64_t iterations) {
  return std::make_unique<IteratedHash>(
      std::shared_ptr<const HashFunction>(make_hash(algorithm)), iterations);
}

}  // namespace ugc
