#include "crypto/iterated_hash.h"

#include <array>
#include <cstring>

#include "common/error.h"

namespace ugc {

namespace {

// Large enough for every digest this library produces (max is SHA-256's 32).
constexpr std::size_t kMaxStackDigest = 64;

// Streams the message into the base context, then chains the remaining
// iterations at finish.
class IteratedContext final : public HashContext {
 public:
  IteratedContext(const IteratedHash& owner,
                  std::unique_ptr<HashContext> base_context)
      : owner_(owner), base_context_(std::move(base_context)) {}

  void reset() override { base_context_->reset(); }
  void update(BytesView data) override { base_context_->update(data); }
  void finish(std::span<std::uint8_t> out) override {
    check(out.size() == owner_.digest_size(), "IteratedContext: need ",
          owner_.digest_size(), " bytes, got ", out.size());
    base_context_->finish(out);
    owner_.iterate_tail(out);
  }

 private:
  const IteratedHash& owner_;
  std::unique_ptr<HashContext> base_context_;
};

}  // namespace

IteratedHash::IteratedHash(std::shared_ptr<const HashFunction> base,
                           std::uint64_t iterations)
    : base_(std::move(base)), iterations_(iterations) {
  check(base_ != nullptr, "IteratedHash: base hash must not be null");
  check(iterations_ >= 1, "IteratedHash: iterations must be >= 1");
}

std::size_t IteratedHash::digest_size() const noexcept {
  return base_->digest_size();
}

Bytes IteratedHash::hash(BytesView data) const {
  Bytes out(digest_size());
  hash_into(data, out);
  return out;
}

void IteratedHash::hash_into(BytesView data,
                             std::span<std::uint8_t> out) const {
  check(out.size() == digest_size(), "IteratedHash::hash_into: need ",
        digest_size(), " bytes, got ", out.size());
  base_->hash_into(data, out);
  iterate_tail(out);
}

void IteratedHash::hash_pair(BytesView left, BytesView right,
                             std::span<std::uint8_t> out) const {
  check(out.size() == digest_size(), "IteratedHash::hash_pair: need ",
        digest_size(), " bytes, got ", out.size());
  base_->hash_pair(left, right, out);
  iterate_tail(out);
}

void IteratedHash::iterate_tail(std::span<std::uint8_t> out) const {
  const std::size_t ds = digest_size();
  if (ds <= kMaxStackDigest) {
    // Ping-pong between `out` and a stack scratch buffer; the chain ends on
    // `out` because each round-trip is two hops and we copy back if odd.
    std::array<std::uint8_t, kMaxStackDigest> scratch;
    std::uint8_t* cur = out.data();
    std::uint8_t* alt = scratch.data();
    for (std::uint64_t i = 1; i < iterations_; ++i) {
      base_->hash_into(BytesView(cur, ds), std::span<std::uint8_t>(alt, ds));
      std::swap(cur, alt);
    }
    if (cur != out.data()) {
      std::memcpy(out.data(), cur, ds);
    }
  } else {
    Bytes scratch(ds);
    for (std::uint64_t i = 1; i < iterations_; ++i) {
      base_->hash_into(BytesView(out.data(), ds), scratch);
      std::memcpy(out.data(), scratch.data(), ds);
    }
  }
}

std::unique_ptr<HashContext> IteratedHash::new_context() const {
  return std::make_unique<IteratedContext>(*this, base_->new_context());
}

std::string IteratedHash::name() const {
  return concat(base_->name(), "^", iterations_);
}

std::unique_ptr<IteratedHash> make_iterated_hash(HashAlgorithm algorithm,
                                                 std::uint64_t iterations) {
  return std::make_unique<IteratedHash>(
      std::shared_ptr<const HashFunction>(make_hash(algorithm)), iterations);
}

}  // namespace ugc
