#include "crypto/sha256.h"

#include <cstring>

#include "crypto/sha_ni.h"

namespace ugc {

namespace {

// First 32 bits of the fractional parts of the cube roots of the first 64
// primes (FIPS 180-4 §4.2.2).
constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

std::uint32_t rotr32(std::uint32_t x, int s) {
  return (x >> s) | (x << (32 - s));
}

}  // namespace

Sha256::Sha256() {
  reset();
}

void Sha256::reset() {
  state_ = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
            0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockSize) {
      process_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  const std::size_t full_blocks = (data.size() - offset) / kBlockSize;
  if (full_blocks > 0) {
    process_blocks(data.data() + offset, full_blocks);
    offset += full_blocks * kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t blocks) {
  static const bool use_ni = sha_ni_available();
  if (use_ni) {
    sha256_process_blocks_ni(state_.data(), data, blocks);
    return;
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    process_block(data + b * kBlockSize);
  }
}

Digest32 Sha256::finish() {
  Digest32 out;
  finish_into(out.data());
  return out;
}

void Sha256::finish_into(std::uint8_t* out) {
  const std::uint64_t bit_length = total_bytes_ * 8;

  std::array<std::uint8_t, kBlockSize> pad{};
  pad[0] = 0x80;
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(BytesView(pad.data(), pad_len));

  std::array<std::uint8_t, 8> length_be{};
  put_u64_be(bit_length, length_be.data());
  update(BytesView(length_be.data(), length_be.size()));

  for (int i = 0; i < 8; ++i) {
    put_u32_be(state_[static_cast<std::size_t>(i)],
               out + 4 * static_cast<std::size_t>(i));
  }
}

Digest32 Sha256::hash(BytesView data) {
  Sha256 sha;
  sha.update(data);
  return sha.finish();
}

void Sha256::digest_pair_x2(BytesView left0, BytesView right0,
                            std::uint8_t* out0, BytesView left1,
                            BytesView right1, std::uint8_t* out1) {
  static const bool use_ni = sha_ni_available();
  // The interleave only pays for the interior-node shape: digest||digest is
  // exactly one message block plus the constant padding block, so both
  // streams run in lockstep with no per-call padding assembly. Everything
  // else (raw leaves, odd sizes) digests serially — one stream is already
  // near compression-throughput on an out-of-order core.
  if (use_ni && left0.size() == kDigestSize && right0.size() == kDigestSize &&
      left1.size() == kDigestSize && right1.size() == kDigestSize) {
    sha256_pair_digest_x2_ni(left0.data(), right0.data(), out0, left1.data(),
                             right1.data(), out1);
    return;
  }

  Sha256 a;
  a.update(left0);
  a.update(right0);
  a.finish_into(out0);
  Sha256 b;
  b.update(left1);
  b.update(right1);
  b.finish_into(out1);
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = read_u32_be(block + 4 * i);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];
  std::uint32_t f = state_[5];
  std::uint32_t g = state_[6];
  std::uint32_t h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 =
        h + s1 + ch + kK[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

}  // namespace ugc
