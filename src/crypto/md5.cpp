#include "crypto/md5.h"

#include <cmath>
#include <cstring>

namespace ugc {

namespace {

// Per RFC 1321: K[i] = floor(|sin(i + 1)| * 2^32). Computed once at startup
// from the defining formula to avoid transcription errors.
const std::array<std::uint32_t, 64>& k_table() {
  static const std::array<std::uint32_t, 64> table = [] {
    std::array<std::uint32_t, 64> k{};
    for (int i = 0; i < 64; ++i) {
      k[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(
          std::floor(std::fabs(std::sin(i + 1.0)) * 4294967296.0));
    }
    return k;
  }();
  return table;
}

constexpr std::array<int, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

std::uint32_t rotl32(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint32_t v, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

Md5::Md5() {
  reset();
}

void Md5::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Md5::update(BytesView data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest16 Md5::finish() {
  Digest16 out;
  finish_into(out.data());
  return out;
}

void Md5::finish_into(std::uint8_t* out) {
  const std::uint64_t bit_length = total_bytes_ * 8;

  // Padding: a single 0x80, zeros to 56 mod 64, then the bit length LE.
  std::array<std::uint8_t, kBlockSize> pad{};
  pad[0] = 0x80;
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(BytesView(pad.data(), pad_len));

  std::array<std::uint8_t, 8> length_le{};
  for (int i = 0; i < 8; ++i) {
    length_le[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_length >> (8 * i));
  }
  update(BytesView(length_le.data(), length_le.size()));

  for (int i = 0; i < 4; ++i) {
    store_le32(state_[static_cast<std::size_t>(i)],
               out + 4 * static_cast<std::size_t>(i));
  }
}

Digest16 Md5::hash(BytesView data) {
  Md5 md5;
  md5.update(data);
  return md5.finish();
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = load_le32(block + 4 * i);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];

  const auto& k = k_table();
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + k[static_cast<std::size_t>(i)] + m[g],
                   kShift[static_cast<std::size_t>(i)]);
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

}  // namespace ugc
