#pragma once

#include <cstdint>
#include <memory>

#include "crypto/hash_function.h"

namespace ugc {

// The cost-tuned one-way function of §4.2: g = H^k (apply H, then re-hash the
// digest k-1 more times).
//
// NI-CBS derives sample indices from the committed Merkle root via g. Making
// g deliberately slow (large k) is the paper's Eq. 5 defense: a cheater who
// re-rolls commitments until the self-derived samples all land in its
// honestly-computed subset must pay m·Cg per attempt, and with
// (1/r^m)·m·Cg ≥ n·Cf the expected attack cost exceeds doing the work.
class IteratedHash final : public HashFunction {
 public:
  // `base` must outlive this object via shared ownership; `iterations` ≥ 1.
  IteratedHash(std::shared_ptr<const HashFunction> base,
               std::uint64_t iterations);

  std::size_t digest_size() const noexcept override;
  Bytes hash(BytesView data) const override;
  std::string name() const override;

  std::uint64_t iterations() const noexcept { return iterations_; }
  const HashFunction& base() const noexcept { return *base_; }

 private:
  std::shared_ptr<const HashFunction> base_;
  std::uint64_t iterations_;
};

// Convenience: g = algorithm^iterations.
std::unique_ptr<IteratedHash> make_iterated_hash(HashAlgorithm algorithm,
                                                 std::uint64_t iterations);

}  // namespace ugc
