#pragma once

#include <cstdint>
#include <memory>

#include "crypto/hash_function.h"

namespace ugc {

// The cost-tuned one-way function of §4.2: g = H^k (apply H, then re-hash the
// digest k-1 more times).
//
// NI-CBS derives sample indices from the committed Merkle root via g. Making
// g deliberately slow (large k) is the paper's Eq. 5 defense: a cheater who
// re-rolls commitments until the self-derived samples all land in its
// honestly-computed subset must pay m·Cg per attempt, and with
// (1/r^m)·m·Cg ≥ n·Cf the expected attack cost exceeds doing the work.
//
// The digest chain runs through the base hash's `hash_into` on two
// ping-pong stack buffers, so iterating k times costs k compressions and no
// heap allocations.
class IteratedHash final : public HashFunction {
 public:
  // `base` must outlive this object via shared ownership; `iterations` ≥ 1.
  IteratedHash(std::shared_ptr<const HashFunction> base,
               std::uint64_t iterations);

  std::size_t digest_size() const noexcept override;
  Bytes hash(BytesView data) const override;
  void hash_into(BytesView data, std::span<std::uint8_t> out) const override;
  void hash_pair(BytesView left, BytesView right,
                 std::span<std::uint8_t> out) const override;
  std::unique_ptr<HashContext> new_context() const override;
  std::string name() const override;

  std::uint64_t iterations() const noexcept { return iterations_; }
  const HashFunction& base() const noexcept { return *base_; }

  // Advances `out` — which must hold H(message), the first link of the
  // chain — through the remaining k-1 re-hashes in place. Exposed for the
  // incremental context, which obtains the first link from a streaming base
  // context.
  void iterate_tail(std::span<std::uint8_t> out) const;

 private:
  std::shared_ptr<const HashFunction> base_;
  std::uint64_t iterations_;
};

// Convenience: g = algorithm^iterations.
std::unique_ptr<IteratedHash> make_iterated_hash(HashAlgorithm algorithm,
                                                 std::uint64_t iterations);

}  // namespace ugc
