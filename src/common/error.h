#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ugc {

// Base class for programming/usage errors thrown by the library.
//
// Protocol-level failures (e.g. a participant failing verification, a message
// that decodes but fails a semantic check) are modelled as *data* carried in
// result types, not as exceptions; exceptions signal misuse of an API or a
// broken invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

namespace detail {

inline void format_parts(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_parts(std::ostringstream& out, const T& first, const Rest&... rest) {
  out << first;
  format_parts(out, rest...);
}

}  // namespace detail

// Builds a string from streamable parts. Kept here (rather than using
// std::format) because libstdc++ 12 does not ship <format>.
template <typename... Parts>
std::string concat(const Parts&... parts) {
  std::ostringstream out;
  detail::format_parts(out, parts...);
  return out.str();
}

// Throws ugc::Error with a message built from `parts` when `condition` is
// false. This is the library's argument/invariant check, used at public API
// boundaries.
template <typename... Parts>
void check(bool condition, const Parts&... parts) {
  if (!condition) {
    throw Error(concat(parts...));
  }
}

}  // namespace ugc
