#include "common/rng.h"

#include "common/error.h"

namespace ugc {

namespace {

// splitmix64: used only to expand the user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  check(bound > 0, "Rng::uniform: bound must be positive");
  // Rejection sampling over the largest multiple of `bound` that fits in 64
  // bits; expected < 2 draws for any bound.
  const std::uint64_t threshold = -bound % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::unit_real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit_real() < p;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t word = next();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(word & 0xff));
      word >>= 8;
    }
  }
  return out;
}

Rng Rng::fork() {
  return Rng(next());
}

}  // namespace ugc
