#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ugc {

// The library's byte-buffer vocabulary types. Owning buffers are Bytes;
// read-only views at API boundaries are BytesView (per I.13 / SL guidance:
// pass spans, not pointer+length pairs).
using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

inline Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

inline std::string to_string(BytesView data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

inline Bytes concat_bytes(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  append(out, a);
  append(out, b);
  return out;
}

inline bool equal_bytes(BytesView a, BytesView b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

// Big-endian fixed-width integer store/load, used wherever a digest has to be
// interpreted as an integer (NI-CBS sample derivation) or a length serialized.
inline void put_u64_be(std::uint64_t value, std::uint8_t* out) {
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
  }
}

inline std::uint64_t read_u64_be(const std::uint8_t* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | in[i];
  }
  return value;
}

inline void put_u32_be(std::uint32_t value, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

inline std::uint32_t read_u32_be(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

}  // namespace ugc
