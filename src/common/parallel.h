#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace ugc {

// Ranges with fewer elements than this are not worth spawning threads for —
// create/join overhead would dominate. The single tuning point shared by
// every parallel_for(_chunks) hot path (Merkle level builds, the engine's
// domain sweep): retune it here, not per call site.
inline constexpr std::uint64_t kParallelMinimumWork = 4096;

// Runs fn(i) for i in [begin, end) across up to `threads` workers (0 = use
// hardware concurrency). Blocks until every index is processed. Indices are
// partitioned into contiguous chunks, so neighbouring work shares cache.
// If fn throws, every worker is still joined and the first exception is
// rethrown on the calling thread.
//
// Used by the Monte-Carlo benches to parallelize independent trials and by
// the commitment pipeline (Merkle level builds, the participant domain
// sweep); the grid simulation itself stays single-threaded for determinism.
void parallel_for(std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& fn,
                  unsigned threads = 0);

// Lower-overhead variant for tiny loop bodies: partitions [begin, end) into
// one contiguous [lo, hi) chunk per worker and calls fn(lo, hi) once per
// chunk, so the per-index cost is a plain loop iteration instead of a
// std::function dispatch. fn must be safe to call concurrently on disjoint
// chunks. With `threads` = 1 (or a range smaller than two chunks) fn runs
// once on the caller's thread — byte-identical side-effect ordering to a
// serial loop.
void parallel_for_chunks(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn,
    unsigned threads = 0);

}  // namespace ugc
