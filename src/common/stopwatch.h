#pragma once

#include <chrono>
#include <cstdint>

namespace ugc {

// Minimal steady-clock stopwatch used by benches and cost calibration.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ugc
