#include "common/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>

#include "common/error.h"

namespace ugc {

namespace {

unsigned resolve_workers(std::uint64_t count, unsigned threads) {
  unsigned workers =
      threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) {
    workers = 1;
  }
  return static_cast<unsigned>(std::min<std::uint64_t>(workers, count));
}

}  // namespace

void parallel_for_chunks(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn,
    unsigned threads) {
  check(begin <= end, "parallel_for_chunks: begin > end");
  check(fn != nullptr, "parallel_for_chunks: callable required");
  const std::uint64_t count = end - begin;
  if (count == 0) {
    return;
  }

  const unsigned workers = resolve_workers(count, threads);
  if (workers == 1) {
    fn(begin, end);
    return;
  }

  // User callbacks may throw (check()/ugc::Error is the codebase's error
  // mechanism): capture the first exception, always join every worker, and
  // rethrow on the calling thread — never std::terminate.
  std::mutex failure_mutex;
  std::exception_ptr failure;
  const auto run_chunk = [&fn, &failure_mutex,
                          &failure](std::uint64_t lo, std::uint64_t hi) {
    try {
      fn(lo, hi);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) {
        failure = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  const std::uint64_t chunk = count / workers;
  const std::uint64_t remainder = count % workers;
  std::uint64_t cursor = begin;
  std::uint64_t first_hi = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const std::uint64_t width = chunk + (w < remainder ? 1 : 0);
    const std::uint64_t lo = cursor;
    const std::uint64_t hi = cursor + width;
    cursor = hi;
    if (w == 0) {
      first_hi = hi;  // run the first chunk on the calling thread
      continue;
    }
    pool.emplace_back([lo, hi, &run_chunk] { run_chunk(lo, hi); });
  }
  run_chunk(begin, first_hi);
  for (std::thread& t : pool) {
    t.join();
  }
  if (failure) {
    std::rethrow_exception(failure);
  }
}

void parallel_for(std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& fn,
                  unsigned threads) {
  check(fn != nullptr, "parallel_for: callable required");
  parallel_for_chunks(
      begin, end,
      [&fn](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          fn(i);
        }
      },
      threads);
}

}  // namespace ugc
