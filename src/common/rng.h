#pragma once

#include <cstdint>
#include <limits>

#include "common/bytes.h"

namespace ugc {

// Deterministic pseudo-random generator (xoshiro256**, seeded via splitmix64).
//
// All randomness in the library flows through an injected Rng so that every
// protocol run, Monte-Carlo experiment, and test is reproducible from a seed.
// Satisfies std::uniform_random_bit_generator, so it composes with <random>
// distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  // Next raw 64-bit output.
  std::uint64_t next();
  result_type operator()() { return next(); }

  // Uniform integer in [0, bound). Unbiased (rejection sampling).
  // Requires bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

  // Uniform double in [0, 1) with 53 bits of precision.
  double unit_real();

  // True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);

  // n uniformly random bytes.
  Bytes bytes(std::size_t n);

  // Derives an independent child generator; the parent advances. Used to give
  // each simulated node / participant its own stream.
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace ugc
