#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace ugc {

// Lower-case hexadecimal encoding of a byte buffer.
std::string to_hex(BytesView data);

// Decodes a hex string (case-insensitive). Throws ugc::Error on odd length or
// non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace ugc
