#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace ugc {

// Index of an input within a participant's domain D = {x_0 .. x_{n-1}}.
// (0-based; the paper writes 1-based indices.) A strong type so that leaf
// indices, raw inputs, and byte counts cannot be mixed up at API boundaries.
struct LeafIndex {
  std::uint64_t value{0};

  friend constexpr auto operator<=>(const LeafIndex&, const LeafIndex&) = default;
};

// Identifier of a task handed to one participant.
struct TaskId {
  std::uint64_t value{0};

  friend constexpr auto operator<=>(const TaskId&, const TaskId&) = default;
};

// Identifier of a node (supervisor / participant / broker) in the simulated
// grid.
struct GridNodeId {
  std::uint32_t value{0};

  friend constexpr auto operator<=>(const GridNodeId&, const GridNodeId&) = default;
};

}  // namespace ugc

template <>
struct std::hash<ugc::LeafIndex> {
  std::size_t operator()(const ugc::LeafIndex& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<ugc::TaskId> {
  std::size_t operator()(const ugc::TaskId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<ugc::GridNodeId> {
  std::size_t operator()(const ugc::GridNodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
