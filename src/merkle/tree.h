#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/parallel.h"
#include "common/types.h"
#include "crypto/hash_function.h"
#include "merkle/flat_nodes.h"
#include "merkle/geometry.h"
#include "merkle/proof.h"

namespace ugc {

// Returns the padding leaf value used when the domain size is not a power of
// two: Φ = hash("ugc.merkle.pad.v1"). Padding positions sit beyond the domain
// and can never be selected as samples.
Bytes padding_leaf(const HashFunction& hash);

// Interior levels with at least this many nodes are hashed via parallel_for;
// smaller levels stay serial. Output bytes are identical either way — every
// node writes to a fixed offset.
inline constexpr std::uint64_t kParallelBuildThreshold = kParallelMinimumWork;

// Full in-memory commitment Merkle tree (paper Eq. 1):
//
//   Φ(L_i) = f(x_i)                       (leaves: raw result bytes)
//   Φ(V)   = hash(Φ(V.left) || Φ(V.right)) (internal nodes)
//
// The tree is "complete" in the paper's sense: the leaf level is padded to the
// next power of two with a fixed padding value. The root Φ(R) is the
// participant's commitment to all n results.
//
// Storage: each level is one contiguous FlatNodes buffer of digest-stride
// nodes (the leaf level may hold variable-length raw results). Interior
// levels are produced with HashFunction::hash_pair straight into the level
// buffer — no per-node allocations — and, above kParallelBuildThreshold,
// in parallel across worker threads.
class MerkleTree {
 public:
  // Builds a tree over `leaves` (must be non-empty). Leaf bytes are packed
  // into one contiguous level buffer, each source leaf freed as it is
  // copied. `threads` caps the level-build worker count (0 = hardware
  // concurrency); the committed bytes do not depend on it.
  static MerkleTree build(std::vector<Bytes> leaves, const HashFunction& hash,
                          unsigned threads = 0);

  // The committed root Φ(R).
  Bytes root() const {
    const BytesView view = levels_.back()[0];
    return Bytes(view.begin(), view.end());
  }

  // Number of real (unpadded) leaves, i.e. n = |D|.
  std::uint64_t leaf_count() const { return leaf_count_; }

  // Padded leaf count (power of two).
  std::uint64_t padded_leaf_count() const { return levels_.front().size(); }

  // Path length from a leaf to the root (the paper's H).
  unsigned height() const {
    return static_cast<unsigned>(levels_.size() - 1);
  }

  // Φ value of leaf `index` (must be < leaf_count()).
  BytesView leaf(LeafIndex index) const;

  // Φ value of the node at `level` (0 = leaves, height() = root) and
  // `position` within that level. Bounds-checked.
  BytesView node(unsigned level, std::uint64_t position) const;

  // Authentication path for leaf `index` (must be < leaf_count()).
  MerkleProof prove(LeafIndex index) const;

  // Replaces the value of leaf `index` and recomputes the O(log n) ancestors.
  // This is what makes the §4.2 retry attack cheap: each re-roll of a guessed
  // leaf costs only a path update, not a rebuild.
  void update_leaf(LeafIndex index, Bytes value, const HashFunction& hash);

  // Total number of stored nodes across all levels (paper's storage cost).
  std::size_t node_count() const;

  // Sum of stored node payload sizes in bytes.
  std::size_t stored_bytes() const;

 private:
  MerkleTree() = default;

  std::uint64_t leaf_count_ = 0;
  // levels_[0] = padded leaves; levels_.back() = { root }.
  std::vector<FlatNodes> levels_;
};

}  // namespace ugc
