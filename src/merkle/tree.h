#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/hash_function.h"
#include "merkle/proof.h"

namespace ugc {

// Returns the padding leaf value used when the domain size is not a power of
// two: Φ = hash("ugc.merkle.pad.v1"). Padding positions sit beyond the domain
// and can never be selected as samples.
Bytes padding_leaf(const HashFunction& hash);

// Smallest power of two >= n (n >= 1).
std::uint64_t next_power_of_two(std::uint64_t n);

// Number of levels above the leaves for a padded tree of `leaf_count` leaves
// (i.e. log2 of the padded size).
unsigned tree_height(std::uint64_t leaf_count);

// Full in-memory commitment Merkle tree (paper Eq. 1):
//
//   Φ(L_i) = f(x_i)                       (leaves: raw result bytes)
//   Φ(V)   = hash(Φ(V.left) || Φ(V.right)) (internal nodes)
//
// The tree is "complete" in the paper's sense: the leaf level is padded to the
// next power of two with a fixed padding value. The root Φ(R) is the
// participant's commitment to all n results.
class MerkleTree {
 public:
  // Builds a tree over `leaves` (must be non-empty). Leaf values are moved in.
  static MerkleTree build(std::vector<Bytes> leaves, const HashFunction& hash);

  // The committed root Φ(R).
  const Bytes& root() const { return levels_.back().front(); }

  // Number of real (unpadded) leaves, i.e. n = |D|.
  std::uint64_t leaf_count() const { return leaf_count_; }

  // Padded leaf count (power of two).
  std::uint64_t padded_leaf_count() const { return levels_.front().size(); }

  // Path length from a leaf to the root (the paper's H).
  unsigned height() const {
    return static_cast<unsigned>(levels_.size() - 1);
  }

  // Φ value of leaf `index` (must be < leaf_count()).
  const Bytes& leaf(LeafIndex index) const;

  // Φ value of the node at `level` (0 = leaves, height() = root) and
  // `position` within that level. Bounds-checked.
  const Bytes& node(unsigned level, std::uint64_t position) const;

  // Authentication path for leaf `index` (must be < leaf_count()).
  MerkleProof prove(LeafIndex index) const;

  // Replaces the value of leaf `index` and recomputes the O(log n) ancestors.
  // This is what makes the §4.2 retry attack cheap: each re-roll of a guessed
  // leaf costs only a path update, not a rebuild.
  void update_leaf(LeafIndex index, Bytes value, const HashFunction& hash);

  // Total number of stored nodes across all levels (paper's storage cost).
  std::size_t node_count() const;

  // Sum of stored node payload sizes in bytes.
  std::size_t stored_bytes() const;

 private:
  MerkleTree() = default;

  std::uint64_t leaf_count_ = 0;
  // levels_[0] = padded leaves; levels_.back() = { root }.
  std::vector<std::vector<Bytes>> levels_;
};

}  // namespace ugc
