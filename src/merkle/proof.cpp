#include "merkle/proof.h"

namespace ugc {

Bytes compute_root(const MerkleProof& proof, const HashFunction& hash) {
  const std::size_t digest_size = hash.digest_size();
  // Fold the path with hash_pair, ping-ponging between two buffers that
  // settle at digest capacity — no per-level allocations.
  Bytes current = proof.leaf_value;
  Bytes parent;
  std::uint64_t index = proof.index.value;
  for (const Bytes& sibling : proof.siblings) {
    parent.resize(digest_size);
    if ((index & 1) == 0) {
      hash.hash_pair(current, sibling, parent);
    } else {
      hash.hash_pair(sibling, current, parent);
    }
    current.swap(parent);
    index >>= 1;
  }
  return current;
}

bool verify_proof(const MerkleProof& proof, BytesView expected_root,
                  const HashFunction& hash) {
  return equal_bytes(compute_root(proof, hash), expected_root);
}

}  // namespace ugc
