#include "merkle/proof.h"

namespace ugc {

Bytes compute_root(const MerkleProof& proof, const HashFunction& hash) {
  Bytes current = proof.leaf_value;
  std::uint64_t index = proof.index.value;
  for (const Bytes& sibling : proof.siblings) {
    if ((index & 1) == 0) {
      current = hash.hash(concat_bytes(current, sibling));
    } else {
      current = hash.hash(concat_bytes(sibling, current));
    }
    index >>= 1;
  }
  return current;
}

bool verify_proof(const MerkleProof& proof, BytesView expected_root,
                  const HashFunction& hash) {
  return equal_bytes(compute_root(proof, hash), expected_root);
}

}  // namespace ugc
