#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/hash_function.h"
#include "merkle/flat_nodes.h"
#include "merkle/proof.h"

namespace ugc {

// The §3.3 storage/computation tradeoff: instead of storing all O(|D|) tree
// nodes, the participant keeps only the top of the tree — every node at
// height >= ℓ (the paper stores "up to level H−ℓ" with the root at level 0;
// heights here are counted from the leaves, so depth d = H − height).
//
// Storage drops by a factor of 2^ℓ. To prove a sample, the participant must
// rebuild the 2^ℓ-leaf subtree containing it, re-evaluating f for those
// inputs; the rebuilt in-subtree path is then extended with stored siblings.
// The paper's relative computation overhead for m samples is
// rco = m·2^ℓ / |D| = 2m / S, with S = 2^(H−ℓ+1) the stored node count.
class PartialMerkleTree {
 public:
  // Supplies Φ(L_i) = f(x_i) for any leaf index; called once per leaf during
  // build and again for every leaf of a rebuilt subtree during prove().
  using LeafProvider = std::function<Bytes(LeafIndex)>;

  // Builds the commitment, storing only nodes at height >= subtree_height (ℓ).
  // ℓ is clamped to the tree height H; ℓ = 0 stores the full tree.
  static PartialMerkleTree build(std::uint64_t leaf_count,
                                 unsigned subtree_height,
                                 const LeafProvider& leaves,
                                 const HashFunction& hash);

  Bytes root() const {
    const BytesView view = stored_.back()[0];
    return Bytes(view.begin(), view.end());
  }
  std::uint64_t leaf_count() const { return leaf_count_; }

  // Height H of the padded tree.
  unsigned height() const { return height_; }

  // The effective ℓ (after clamping).
  unsigned subtree_height() const { return subtree_height_; }

  // Number of stored nodes (the paper's S = 2^(H−ℓ+1), up to rounding when
  // ℓ = H and only the root remains).
  std::size_t stored_node_count() const;

  // Total stored payload in bytes.
  std::size_t stored_bytes() const;

  // Produces the authentication path for `index`, rebuilding the unsaved
  // subtree that contains it. `leaves` re-evaluates f; every re-evaluation is
  // counted in recomputed_leaf_count().
  MerkleProof prove(LeafIndex index, const LeafProvider& leaves,
                    const HashFunction& hash) const;

  // Cumulative number of leaf re-evaluations performed by prove() calls —
  // the measured numerator of the paper's rco.
  std::uint64_t recomputed_leaf_count() const { return recompute_meter_; }

 private:
  PartialMerkleTree() = default;

  std::uint64_t leaf_count_ = 0;
  unsigned height_ = 0;
  unsigned subtree_height_ = 0;
  // stored_[h - subtree_height_] = all node values at height h, for
  // h in [subtree_height_, height_], each level one contiguous buffer.
  std::vector<FlatNodes> stored_;
  mutable std::uint64_t recompute_meter_ = 0;
};

}  // namespace ugc
