#include "merkle/tree.h"

#include "common/error.h"

namespace ugc {

Bytes padding_leaf(const HashFunction& hash) {
  return hash.hash(to_bytes("ugc.merkle.pad.v1"));
}

std::uint64_t next_power_of_two(std::uint64_t n) {
  check(n >= 1, "next_power_of_two: n must be >= 1");
  std::uint64_t p = 1;
  while (p < n) {
    check(p <= (std::uint64_t{1} << 62), "next_power_of_two: overflow");
    p <<= 1;
  }
  return p;
}

unsigned tree_height(std::uint64_t leaf_count) {
  const std::uint64_t padded = next_power_of_two(leaf_count);
  unsigned height = 0;
  while ((std::uint64_t{1} << height) < padded) {
    ++height;
  }
  return height;
}

MerkleTree MerkleTree::build(std::vector<Bytes> leaves,
                             const HashFunction& hash) {
  check(!leaves.empty(), "MerkleTree::build: at least one leaf required");

  MerkleTree tree;
  tree.leaf_count_ = leaves.size();

  const std::uint64_t padded = next_power_of_two(leaves.size());
  const Bytes pad = padding_leaf(hash);
  leaves.resize(padded, pad);

  tree.levels_.push_back(std::move(leaves));
  while (tree.levels_.back().size() > 1) {
    const std::vector<Bytes>& below = tree.levels_.back();
    std::vector<Bytes> level;
    level.reserve(below.size() / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      level.push_back(hash.hash(concat_bytes(below[i], below[i + 1])));
    }
    tree.levels_.push_back(std::move(level));
  }
  return tree;
}

const Bytes& MerkleTree::node(unsigned level, std::uint64_t position) const {
  check(level < levels_.size(), "MerkleTree::node: level ", level,
        " out of range");
  check(position < levels_[level].size(), "MerkleTree::node: position ",
        position, " out of range at level ", level);
  return levels_[level][position];
}

const Bytes& MerkleTree::leaf(LeafIndex index) const {
  check(index.value < leaf_count_, "MerkleTree::leaf: index ", index.value,
        " out of range (n=", leaf_count_, ")");
  return levels_.front()[index.value];
}

MerkleProof MerkleTree::prove(LeafIndex index) const {
  check(index.value < leaf_count_, "MerkleTree::prove: index ", index.value,
        " out of range (n=", leaf_count_, ")");

  MerkleProof proof;
  proof.index = index;
  proof.leaf_value = levels_.front()[index.value];
  proof.siblings.reserve(height());

  std::uint64_t position = index.value;
  for (unsigned level = 0; level < height(); ++level) {
    proof.siblings.push_back(levels_[level][position ^ 1]);
    position >>= 1;
  }
  return proof;
}

void MerkleTree::update_leaf(LeafIndex index, Bytes value,
                             const HashFunction& hash) {
  check(index.value < leaf_count_, "MerkleTree::update_leaf: index ",
        index.value, " out of range (n=", leaf_count_, ")");

  levels_.front()[index.value] = std::move(value);
  std::uint64_t position = index.value;
  for (unsigned level = 0; level + 1 <= height(); ++level) {
    const std::uint64_t parent = position >> 1;
    const std::vector<Bytes>& below = levels_[level];
    levels_[level + 1][parent] =
        hash.hash(concat_bytes(below[2 * parent], below[2 * parent + 1]));
    position = parent;
  }
}

std::size_t MerkleTree::node_count() const {
  std::size_t total = 0;
  for (const auto& level : levels_) {
    total += level.size();
  }
  return total;
}

std::size_t MerkleTree::stored_bytes() const {
  std::size_t total = 0;
  for (const auto& level : levels_) {
    for (const Bytes& node : level) {
      total += node.size();
    }
  }
  return total;
}

}  // namespace ugc
