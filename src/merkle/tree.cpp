#include "merkle/tree.h"

#include "common/error.h"
#include "common/parallel.h"

namespace ugc {

Bytes padding_leaf(const HashFunction& hash) {
  return hash.hash(to_bytes("ugc.merkle.pad.v1"));
}

MerkleTree MerkleTree::build(std::vector<Bytes> leaves,
                             const HashFunction& hash, unsigned threads) {
  check(!leaves.empty(), "MerkleTree::build: at least one leaf required");

  MerkleTree tree;
  tree.leaf_count_ = leaves.size();

  const std::uint64_t padded = next_power_of_two(leaves.size());
  const std::size_t digest_size = hash.digest_size();

  FlatNodes leaf_level;
  leaf_level.reserve(padded, leaves.front().size());
  for (Bytes& leaf : leaves) {
    leaf_level.push_back(leaf);
    // Release each source leaf as it is packed so peak leaf memory stays
    // ~one copy, not two.
    Bytes().swap(leaf);
  }
  if (padded > leaves.size()) {
    const Bytes pad = padding_leaf(hash);
    for (std::uint64_t i = leaves.size(); i < padded; ++i) {
      leaf_level.push_back(pad);
    }
  }
  leaves.clear();
  tree.levels_.push_back(std::move(leaf_level));

  while (tree.levels_.back().size() > 1) {
    const FlatNodes& below = tree.levels_.back();
    const std::uint64_t parent_count = below.size() / 2;
    FlatNodes level = FlatNodes::fixed(digest_size, parent_count);
    const auto hash_range = [&hash, &below, &level](std::uint64_t lo,
                                                    std::uint64_t hi) {
      for (std::uint64_t j = lo; j < hi; ++j) {
        hash.hash_pair(below[2 * j], below[2 * j + 1], level.mutable_node(j));
      }
    };
    if (parent_count >= kParallelBuildThreshold) {
      parallel_for_chunks(0, parent_count, hash_range, threads);
    } else {
      hash_range(0, parent_count);
    }
    tree.levels_.push_back(std::move(level));
  }
  return tree;
}

BytesView MerkleTree::node(unsigned level, std::uint64_t position) const {
  check(level < levels_.size(), "MerkleTree::node: level ", level,
        " out of range");
  check(position < levels_[level].size(), "MerkleTree::node: position ",
        position, " out of range at level ", level);
  return levels_[level][position];
}

BytesView MerkleTree::leaf(LeafIndex index) const {
  check(index.value < leaf_count_, "MerkleTree::leaf: index ", index.value,
        " out of range (n=", leaf_count_, ")");
  return levels_.front()[index.value];
}

MerkleProof MerkleTree::prove(LeafIndex index) const {
  check(index.value < leaf_count_, "MerkleTree::prove: index ", index.value,
        " out of range (n=", leaf_count_, ")");

  MerkleProof proof;
  proof.index = index;
  const BytesView leaf_value = levels_.front()[index.value];
  proof.leaf_value.assign(leaf_value.begin(), leaf_value.end());
  proof.siblings.reserve(height());

  std::uint64_t position = index.value;
  for (unsigned level = 0; level < height(); ++level) {
    const BytesView sibling = levels_[level][position ^ 1];
    proof.siblings.emplace_back(sibling.begin(), sibling.end());
    position >>= 1;
  }
  return proof;
}

void MerkleTree::update_leaf(LeafIndex index, Bytes value,
                             const HashFunction& hash) {
  check(index.value < leaf_count_, "MerkleTree::update_leaf: index ",
        index.value, " out of range (n=", leaf_count_, ")");

  levels_.front().set(index.value, value);
  Bytes parent(hash.digest_size());
  std::uint64_t position = index.value;
  for (unsigned level = 0; level + 1 <= height(); ++level) {
    const FlatNodes& below = levels_[level];
    const std::uint64_t parent_index = position >> 1;
    hash.hash_pair(below[2 * parent_index], below[2 * parent_index + 1],
                   parent);
    levels_[level + 1].set(parent_index, parent);
    position = parent_index;
  }
}

std::size_t MerkleTree::node_count() const {
  std::size_t total = 0;
  for (const FlatNodes& level : levels_) {
    total += level.size();
  }
  return total;
}

std::size_t MerkleTree::stored_bytes() const {
  std::size_t total = 0;
  for (const FlatNodes& level : levels_) {
    total += level.payload_bytes();
  }
  return total;
}

}  // namespace ugc
