#include "merkle/partial_tree.h"

#include "common/error.h"
#include "merkle/streaming_builder.h"
#include "merkle/tree.h"

namespace ugc {

PartialMerkleTree PartialMerkleTree::build(std::uint64_t leaf_count,
                                           unsigned subtree_height,
                                           const LeafProvider& leaves,
                                           const HashFunction& hash) {
  check(leaf_count >= 1, "PartialMerkleTree::build: leaf_count must be >= 1");
  check(leaves != nullptr, "PartialMerkleTree::build: leaf provider required");

  PartialMerkleTree tree;
  tree.leaf_count_ = leaf_count;
  tree.height_ = tree_height(leaf_count);
  tree.subtree_height_ = std::min(subtree_height, tree.height_);

  const unsigned cutoff = tree.subtree_height_;
  tree.stored_.resize(tree.height_ - cutoff + 1);
  for (unsigned h = cutoff; h <= tree.height_; ++h) {
    tree.stored_[h - cutoff].reserve(std::uint64_t{1} << (tree.height_ - h),
                                     hash.digest_size());
  }

  StreamingMerkleBuilder builder(
      hash, [&tree, cutoff](unsigned height, std::uint64_t index,
                            BytesView value) {
        if (height >= cutoff) {
          auto& level = tree.stored_[height - cutoff];
          check(index == level.size(),
                "PartialMerkleTree::build: out-of-order node emission");
          level.push_back(value);
        }
      });

  for (std::uint64_t i = 0; i < leaf_count; ++i) {
    builder.add_leaf(leaves(LeafIndex{i}));
  }
  const Bytes root = builder.finish();
  check(equal_bytes(root, tree.stored_.back()[0]),
        "PartialMerkleTree::build: root mismatch between builder and store");
  return tree;
}

std::size_t PartialMerkleTree::stored_node_count() const {
  std::size_t total = 0;
  for (const FlatNodes& level : stored_) {
    total += level.size();
  }
  return total;
}

std::size_t PartialMerkleTree::stored_bytes() const {
  std::size_t total = 0;
  for (const FlatNodes& level : stored_) {
    total += level.payload_bytes();
  }
  return total;
}

MerkleProof PartialMerkleTree::prove(LeafIndex index,
                                     const LeafProvider& leaves,
                                     const HashFunction& hash) const {
  check(index.value < leaf_count_, "PartialMerkleTree::prove: index ",
        index.value, " out of range (n=", leaf_count_, ")");
  check(leaves != nullptr, "PartialMerkleTree::prove: leaf provider required");

  MerkleProof proof;
  proof.index = index;
  proof.siblings.reserve(height_);

  // Rebuild the unsaved subtree containing the sample: its leaves span
  // [subtree_base, subtree_base + 2^ℓ) in the padded tree.
  const std::uint64_t subtree_size = std::uint64_t{1} << subtree_height_;
  const std::uint64_t subtree_index = index.value >> subtree_height_;
  const std::uint64_t subtree_base = subtree_index << subtree_height_;

  if (subtree_height_ > 0) {
    const Bytes pad = padding_leaf(hash);
    std::vector<Bytes> subtree_leaves;
    subtree_leaves.reserve(subtree_size);
    for (std::uint64_t i = 0; i < subtree_size; ++i) {
      const std::uint64_t global = subtree_base + i;
      if (global < leaf_count_) {
        subtree_leaves.push_back(leaves(LeafIndex{global}));
        ++recompute_meter_;
      } else {
        subtree_leaves.push_back(pad);
      }
    }
    MerkleTree subtree = MerkleTree::build(std::move(subtree_leaves), hash);
    check(equal_bytes(subtree.root(), stored_.front()[subtree_index]),
          "PartialMerkleTree::prove: rebuilt subtree root does not match "
          "stored frontier node — leaf provider is inconsistent with build");

    MerkleProof local = subtree.prove(LeafIndex{index.value - subtree_base});
    proof.leaf_value = std::move(local.leaf_value);
    for (Bytes& sibling : local.siblings) {
      proof.siblings.push_back(std::move(sibling));
    }
  } else {
    // ℓ = 0: the full tree is stored; the "rebuilt subtree" is the leaf.
    const BytesView leaf_value = stored_.front()[index.value];
    proof.leaf_value.assign(leaf_value.begin(), leaf_value.end());
  }

  // Extend with stored siblings from height ℓ up to (but excluding) the root.
  std::uint64_t position = index.value >> subtree_height_;
  for (unsigned h = subtree_height_; h < height_; ++h) {
    const BytesView sibling = stored_[h - subtree_height_][position ^ 1];
    proof.siblings.emplace_back(sibling.begin(), sibling.end());
    position >>= 1;
  }
  return proof;
}

}  // namespace ugc
