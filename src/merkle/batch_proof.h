#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/hash_function.h"
#include "merkle/tree.h"

namespace ugc {

// Batch (multi-leaf) authentication proof.
//
// The paper ships one independent O(log n) path per sample, so the m paths
// repeat their shared ancestors near the root. A batch proof carries every
// needed sibling exactly once: the verifier folds all proven leaves upward
// level by level, pulling siblings from the (deterministically ordered)
// stream only for positions it cannot derive itself. For m samples of an
// n-leaf tree the sibling count drops from m·log2(n) to at most
// m·log2(n/m) + O(m) — measured in bench_batch_proof.
struct BatchProof {
  // Width of the padded leaf level (power of two) — fixes the tree shape.
  std::uint64_t padded_leaf_count = 0;
  // Proven (position, Φ value) pairs, sorted by position, duplicates
  // removed. Positions address the padded leaf level.
  std::vector<std::pair<LeafIndex, Bytes>> leaves;
  // Siblings in consumption order (bottom-up, left-to-right per level).
  std::vector<Bytes> siblings;

  std::size_t payload_bytes() const {
    std::size_t total = 8;
    for (const auto& [index, value] : leaves) {
      total += 8 + value.size();
    }
    for (const Bytes& sibling : siblings) {
      total += sibling.size();
    }
    return total;
  }
};

// Builds the batch proof for `indices` (any order, duplicates allowed; all
// must be < tree.leaf_count()).
BatchProof make_batch_proof(const MerkleTree& tree,
                            std::span<const LeafIndex> indices);

// One proven leaf as a view into caller-owned storage — the verify-side
// counterpart of BatchProof::leaves that carries no copies.
struct BatchLeafView {
  std::uint64_t position = 0;
  BytesView value;
};

// Reusable scratch for allocation-free batch-root reconstruction. The
// supervisor keeps one per session and passes it to every verification;
// after the first few calls all buffers have settled at capacity and a
// reconstruction performs zero heap allocations. Contents are an
// implementation detail — construct once, reuse freely.
struct BatchVerifyScratch {
  // Staging areas callers may fill when adapting owning structures (the
  // fold below never touches them).
  std::vector<BatchLeafView> leaf_views;
  std::vector<BytesView> sibling_views;
  // Ping-pong frontier storage for the upward fold: positions plus flat
  // digest-stride node values per level.
  std::vector<std::uint64_t> positions[2];
  Bytes frontier[2];
};

// Allocation-free core of batch verification: folds `leaves` (sorted by
// position, strictly increasing) upward through a padded tree of
// `padded_leaf_count` leaves, consuming `siblings` in stream order, and sets
// `*root` to a view of the reconstructed root (valid until `scratch` is next
// used; for a one-leaf tree it aliases the leaf value itself).
//
// Returns nullptr on success. On a structurally malformed proof (positions
// unsorted/duplicated/out of range, sibling stream truncated or oversized,
// bad width) it returns a static description and leaves `*root` empty —
// never throws, never reads out of bounds, so hostile proofs are rejected
// at zero cost.
const char* reconstruct_batch_root(std::uint64_t padded_leaf_count,
                                   std::span<const BatchLeafView> leaves,
                                   std::span<const BytesView> siblings,
                                   const HashFunction& hash,
                                   BatchVerifyScratch& scratch,
                                   BytesView* root);

// Merges independent single-leaf proofs (of the same tree) into a batch
// proof, deduplicating shared siblings. Needs no tree access, so it also
// works for proofs produced from a §3.3 partial tree — this is how the
// batched CBS response is assembled. Throws ugc::Error when proofs are
// mutually inconsistent (different heights, conflicting sibling values) or
// empty.
BatchProof merge_proofs(std::span<const MerkleProof> proofs);

// Reconstructs the root implied by the proof. Throws ugc::Error on a
// structurally malformed proof (unsorted/duplicate leaves, out-of-range
// positions, wrong sibling count, non-power-of-two width).
Bytes compute_batch_root(const BatchProof& proof, const HashFunction& hash);

// True when the proof's reconstructed root equals `expected_root`.
// Malformed proofs return false rather than throwing.
bool verify_batch_proof(const BatchProof& proof, BytesView expected_root,
                        const HashFunction& hash);

// Scratch-reusing variant for verification hot loops: identical verdicts,
// zero steady-state allocations.
bool verify_batch_proof(const BatchProof& proof, BytesView expected_root,
                        const HashFunction& hash, BatchVerifyScratch& scratch);

}  // namespace ugc
