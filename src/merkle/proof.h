#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/hash_function.h"

namespace ugc {

// Authentication path for one leaf of a commitment Merkle tree.
//
// `siblings` are the Φ values of the sibling nodes along the path from the
// leaf to the root, bottom-up (the paper's λ1..λH). The bottom-most sibling is
// a raw leaf value (Φ(L) = f(x), variable length); all higher siblings are
// digests.
struct MerkleProof {
  // Position of the proven leaf within the (padded) tree.
  LeafIndex index;
  // Φ(L) of the proven leaf — the raw committed value.
  Bytes leaf_value;
  // Sibling Φ values, bottom-up; size equals the tree height.
  std::vector<Bytes> siblings;

  // Total payload size in bytes (used by communication accounting).
  std::size_t payload_bytes() const {
    std::size_t total = leaf_value.size();
    for (const Bytes& s : siblings) total += s.size();
    return total;
  }
};

// The paper's Λ(Φ(L), λ1..λH): folds the leaf value with the sibling path to
// reconstruct the root commitment Φ(R').
Bytes compute_root(const MerkleProof& proof, const HashFunction& hash);

// True when the proof's reconstructed root equals `expected_root`.
bool verify_proof(const MerkleProof& proof, BytesView expected_root,
                  const HashFunction& hash);

}  // namespace ugc
