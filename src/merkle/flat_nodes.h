#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace ugc {

// Contiguous storage for one Merkle tree level.
//
// Digest levels hold thousands-to-millions of equal-size nodes; storing them
// as vector<Bytes> costs one heap allocation plus pointer-chasing per node.
// FlatNodes packs a level into a single Bytes buffer of `stride`-spaced
// nodes, so a build writes straight into one allocation and proofs read
// cache-adjacent spans.
//
// Leaf levels may carry variable-length raw results (LeafMode::kRaw). The
// container starts in fixed-stride mode on the first push and transparently
// promotes itself to offset-table (variable) mode if a later node has a
// different size, so callers never choose a mode up front.
class FlatNodes {
 public:
  FlatNodes() = default;

  // Preallocates `count` zeroed nodes of `stride` bytes each in fixed mode —
  // the shape parallel level builds write into via mutable_node().
  static FlatNodes fixed(std::size_t stride, std::uint64_t count) {
    check(stride > 0, "FlatNodes::fixed: stride must be positive");
    FlatNodes nodes;
    nodes.stride_ = stride;
    nodes.count_ = count;
    nodes.data_.resize(stride * count);
    return nodes;
  }

  std::uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // True while every stored node shares one size (also true when empty).
  bool is_fixed() const { return offsets_.empty(); }

  // Node size in fixed mode (0 before the first push).
  std::size_t stride() const { return stride_; }

  // Total stored payload in bytes.
  std::size_t payload_bytes() const { return data_.size(); }

  BytesView operator[](std::uint64_t i) const {
    check(i < count_, "FlatNodes: index ", i, " out of range (count=", count_,
          ")");
    if (is_fixed()) {
      return BytesView(data_.data() + i * stride_, stride_);
    }
    return BytesView(data_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  // Writable span of node `i` (fixed mode only) — the parallel build target.
  std::span<std::uint8_t> mutable_node(std::uint64_t i) {
    check(is_fixed(), "FlatNodes::mutable_node: variable-size level");
    check(i < count_, "FlatNodes: index ", i, " out of range (count=", count_,
          ")");
    return std::span<std::uint8_t>(data_.data() + i * stride_, stride_);
  }

  void reserve(std::uint64_t count, std::size_t node_size_hint) {
    data_.reserve(count * node_size_hint);
  }

  void push_back(BytesView node) {
    if (count_ == 0 && is_fixed()) {
      stride_ = node.size();
    } else if (is_fixed() && node.size() != stride_) {
      promote_to_variable();
    }
    if (!is_fixed()) {
      offsets_.push_back(data_.size() + node.size());
    }
    append(data_, node);
    ++count_;
  }

  // Replaces node `i`. Same-size replacements are a memcpy; a size change
  // promotes to variable mode and shifts the tail (rare — only a kRaw leaf
  // level rewritten with a different-width result can hit it).
  void set(std::uint64_t i, BytesView node) {
    check(i < count_, "FlatNodes: index ", i, " out of range (count=", count_,
          ")");
    if (is_fixed() && node.size() == stride_) {
      std::memcpy(data_.data() + i * stride_, node.data(), node.size());
      return;
    }
    if (is_fixed()) {
      promote_to_variable();
    }
    const std::size_t old_begin = offsets_[i];
    const std::size_t old_end = offsets_[i + 1];
    const std::size_t old_size = old_end - old_begin;
    if (node.size() == old_size) {
      std::memcpy(data_.data() + old_begin, node.data(), node.size());
      return;
    }
    Bytes tail(data_.begin() + static_cast<std::ptrdiff_t>(old_end),
               data_.end());
    data_.resize(old_begin);
    append(data_, node);
    append(data_, tail);
    const std::ptrdiff_t delta = static_cast<std::ptrdiff_t>(node.size()) -
                                 static_cast<std::ptrdiff_t>(old_size);
    for (std::uint64_t j = i + 1; j <= count_; ++j) {
      offsets_[j] = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(offsets_[j]) + delta);
    }
  }

 private:
  void promote_to_variable() {
    offsets_.resize(count_ + 1);
    for (std::uint64_t i = 0; i <= count_; ++i) {
      offsets_[i] = i * stride_;
    }
  }

  Bytes data_;
  // Variable mode only: offsets_[i] is the start of node i, with a final
  // end-of-data sentinel, so offsets_.size() == count_ + 1. Empty in fixed
  // mode.
  std::vector<std::size_t> offsets_;
  std::size_t stride_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace ugc
