#pragma once

#include <bit>
#include <cstdint>

#include "common/error.h"

namespace ugc {

// Tree-shape arithmetic shared by every Merkle builder (full tree, partial
// tree, streaming builder) and by the supervisor-side verification code, so
// the padded-size/height conventions are defined in exactly one place.

// True when v is an exact power of two (v >= 1).
inline bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

// Smallest power of two >= n (n >= 1).
inline std::uint64_t next_power_of_two(std::uint64_t n) {
  check(n >= 1, "next_power_of_two: n must be >= 1");
  check(n <= (std::uint64_t{1} << 62), "next_power_of_two: overflow");
  return std::bit_ceil(n);
}

// Number of levels above the leaves for a padded tree of `leaf_count` leaves
// (i.e. log2 of the padded size).
inline unsigned tree_height(std::uint64_t leaf_count) {
  return static_cast<unsigned>(std::countr_zero(next_power_of_two(leaf_count)));
}

}  // namespace ugc
