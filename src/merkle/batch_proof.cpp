#include "merkle/batch_proof.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "merkle/geometry.h"

namespace ugc {

BatchProof make_batch_proof(const MerkleTree& tree,
                            std::span<const LeafIndex> indices) {
  BatchProof proof;
  proof.padded_leaf_count = tree.padded_leaf_count();

  // Sorted, de-duplicated positions with their committed values.
  std::vector<std::uint64_t> positions;
  positions.reserve(indices.size());
  for (const LeafIndex index : indices) {
    check(index.value < tree.leaf_count(),
          "make_batch_proof: index ", index.value, " out of range");
    positions.push_back(index.value);
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  check(!positions.empty(), "make_batch_proof: at least one index required");

  for (const std::uint64_t position : positions) {
    const BytesView value = tree.node(0, position);
    proof.leaves.emplace_back(LeafIndex{position},
                              Bytes(value.begin(), value.end()));
  }

  // Walk upward; emit a sibling only when the verifier cannot derive it.
  std::vector<std::uint64_t> frontier = positions;
  for (unsigned level = 0; level < tree.height(); ++level) {
    std::vector<std::uint64_t> parents;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::uint64_t position = frontier[i];
      const std::uint64_t sibling = position ^ 1;
      const bool sibling_known =
          (i + 1 < frontier.size() && frontier[i + 1] == sibling);
      if (sibling_known) {
        ++i;  // the pair merges; consume both
      } else {
        const BytesView value = tree.node(level, sibling);
        proof.siblings.emplace_back(value.begin(), value.end());
      }
      parents.push_back(position >> 1);
    }
    frontier = std::move(parents);
  }
  return proof;
}

BatchProof merge_proofs(std::span<const MerkleProof> proofs) {
  check(!proofs.empty(), "merge_proofs: at least one proof required");
  const std::size_t height = proofs.front().siblings.size();
  const std::uint64_t padded = std::uint64_t{1} << height;

  // Collect every known node value: proven leaves plus each path's
  // siblings, keyed by (level, position). Conflicts mean the proofs do not
  // belong to one tree.
  std::map<std::pair<unsigned, std::uint64_t>, Bytes> known;
  std::vector<std::uint64_t> positions;
  for (const MerkleProof& proof : proofs) {
    check(proof.siblings.size() == height,
          "merge_proofs: proofs have differing heights (", height, " vs ",
          proof.siblings.size(), ")");
    check(proof.index.value < padded, "merge_proofs: index ",
          proof.index.value, " exceeds tree width");
    positions.push_back(proof.index.value);

    const auto record = [&known](unsigned level, std::uint64_t position,
                                 const Bytes& value) {
      const auto [it, inserted] = known.try_emplace({level, position}, value);
      check(inserted || it->second == value,
            "merge_proofs: conflicting values for node (level=", level,
            ", position=", position, ")");
    };
    record(0, proof.index.value, proof.leaf_value);
    for (unsigned level = 0; level < height; ++level) {
      record(level, (proof.index.value >> level) ^ 1, proof.siblings[level]);
    }
  }

  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());

  BatchProof batch;
  batch.padded_leaf_count = padded;
  for (const std::uint64_t position : positions) {
    batch.leaves.emplace_back(LeafIndex{position},
                              known.at({0u, position}));
  }

  // Same upward walk as make_batch_proof, pulling the needed siblings from
  // the collected map instead of the tree.
  std::vector<std::uint64_t> frontier = positions;
  for (unsigned level = 0; level < height; ++level) {
    std::vector<std::uint64_t> parents;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::uint64_t position = frontier[i];
      const std::uint64_t sibling = position ^ 1;
      const bool sibling_known =
          (i + 1 < frontier.size() && frontier[i + 1] == sibling);
      if (sibling_known) {
        ++i;
      } else {
        const auto it = known.find({level, sibling});
        check(it != known.end(),
              "merge_proofs: missing sibling (level=", level,
              ", position=", sibling, ")");
        batch.siblings.push_back(it->second);
      }
      parents.push_back(position >> 1);
    }
    frontier = std::move(parents);
  }
  return batch;
}

const char* reconstruct_batch_root(std::uint64_t padded_leaf_count,
                                   std::span<const BatchLeafView> leaves,
                                   std::span<const BytesView> siblings,
                                   const HashFunction& hash,
                                   BatchVerifyScratch& scratch,
                                   BytesView* root) {
  *root = BytesView{};
  if (!is_power_of_two(padded_leaf_count)) {
    return "padded_leaf_count must be a power of two";
  }
  if (leaves.empty()) {
    return "no proven leaves";
  }
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (leaves[i].position >= padded_leaf_count) {
      return "leaf position out of range";
    }
    if (i > 0 && leaves[i].position <= leaves[i - 1].position) {
      return "leaf positions must be strictly increasing";
    }
  }
  if (padded_leaf_count == 1) {
    if (!siblings.empty()) {
      return "unconsumed siblings";
    }
    *root = leaves.front().value;
    return nullptr;
  }

  const std::size_t digest_size = hash.digest_size();
  for (int b = 0; b < 2; ++b) {
    if (scratch.positions[b].size() < leaves.size()) {
      scratch.positions[b].resize(leaves.size());
    }
    // Parent counts never exceed the proven-leaf count, so both frontier
    // buffers settle at one capacity and every later call is allocation-free.
    if (scratch.frontier[b].size() < leaves.size() * digest_size) {
      scratch.frontier[b].resize(leaves.size() * digest_size);
    }
  }

  std::size_t next_sibling = 0;
  std::size_t count = leaves.size();
  int cur = 0;  // which ping-pong buffer holds the current level (level >= 1)
  for (std::uint64_t width = padded_leaf_count; width > 1; width >>= 1) {
    const bool at_leaves = width == padded_leaf_count;
    const int out = at_leaves ? 0 : cur ^ 1;
    const auto position_at = [&](std::size_t i) {
      return at_leaves ? leaves[i].position : scratch.positions[cur][i];
    };
    const auto value_at = [&](std::size_t i) -> BytesView {
      if (at_leaves) {
        return leaves[i].value;
      }
      return BytesView(scratch.frontier[cur].data() + i * digest_size,
                       digest_size);
    };

    // Parent nodes within a level are independent, so adjacent hash jobs
    // pair up through hash_pair_x2 (two interleaved compression streams on
    // SHA-NI backends). One job is held pending until its partner arrives;
    // an odd leftover folds alone. Outputs land in disjoint slots of the
    // next frontier, so deferral never races a read.
    std::size_t parents = 0;
    bool have_pending = false;
    BytesView pending_left, pending_right;
    std::span<std::uint8_t> pending_out;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t position = position_at(i);
      const std::span<std::uint8_t> parent(
          scratch.frontier[out].data() + parents * digest_size, digest_size);
      BytesView left, right;
      if (i + 1 < count && position_at(i + 1) == (position ^ 1)) {
        left = value_at(i);
        right = value_at(i + 1);
        ++i;  // the pair merges; consume both
      } else {
        if (next_sibling >= siblings.size()) {
          return "sibling stream exhausted";
        }
        const BytesView provided = siblings[next_sibling++];
        left = (position & 1) == 0 ? value_at(i) : provided;
        right = (position & 1) == 0 ? provided : value_at(i);
      }
      if (have_pending) {
        hash.hash_pair_x2(pending_left, pending_right, pending_out, left,
                          right, parent);
        have_pending = false;
      } else {
        pending_left = left;
        pending_right = right;
        pending_out = parent;
        have_pending = true;
      }
      scratch.positions[out][parents++] = position >> 1;
    }
    if (have_pending) {
      hash.hash_pair(pending_left, pending_right, pending_out);
    }
    count = parents;
    cur = out;
  }

  if (next_sibling != siblings.size()) {
    return "unconsumed siblings";
  }
  if (count != 1) {
    return "did not converge to a single root";
  }
  *root = BytesView(scratch.frontier[cur].data(), digest_size);
  return nullptr;
}

namespace {

// Adapts an owning BatchProof to the view-based fold.
const char* reconstruct_from_proof(const BatchProof& proof,
                                   const HashFunction& hash,
                                   BatchVerifyScratch& scratch,
                                   BytesView* root) {
  scratch.leaf_views.resize(proof.leaves.size());
  for (std::size_t i = 0; i < proof.leaves.size(); ++i) {
    scratch.leaf_views[i] = BatchLeafView{proof.leaves[i].first.value,
                                          proof.leaves[i].second};
  }
  scratch.sibling_views.resize(proof.siblings.size());
  for (std::size_t i = 0; i < proof.siblings.size(); ++i) {
    scratch.sibling_views[i] = proof.siblings[i];
  }
  return reconstruct_batch_root(proof.padded_leaf_count, scratch.leaf_views,
                                scratch.sibling_views, hash, scratch, root);
}

}  // namespace

Bytes compute_batch_root(const BatchProof& proof, const HashFunction& hash) {
  BatchVerifyScratch scratch;
  BytesView root;
  const char* reason = reconstruct_from_proof(proof, hash, scratch, &root);
  check(reason == nullptr, "compute_batch_root: ", reason);
  return Bytes(root.begin(), root.end());
}

bool verify_batch_proof(const BatchProof& proof, BytesView expected_root,
                        const HashFunction& hash, BatchVerifyScratch& scratch) {
  BytesView root;
  return reconstruct_from_proof(proof, hash, scratch, &root) == nullptr &&
         equal_bytes(root, expected_root);
}

bool verify_batch_proof(const BatchProof& proof, BytesView expected_root,
                        const HashFunction& hash) {
  BatchVerifyScratch scratch;
  return verify_batch_proof(proof, expected_root, hash, scratch);
}

}  // namespace ugc
