#include "merkle/batch_proof.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace ugc {

namespace {

bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace

BatchProof make_batch_proof(const MerkleTree& tree,
                            std::span<const LeafIndex> indices) {
  BatchProof proof;
  proof.padded_leaf_count = tree.padded_leaf_count();

  // Sorted, de-duplicated positions with their committed values.
  std::vector<std::uint64_t> positions;
  positions.reserve(indices.size());
  for (const LeafIndex index : indices) {
    check(index.value < tree.leaf_count(),
          "make_batch_proof: index ", index.value, " out of range");
    positions.push_back(index.value);
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  check(!positions.empty(), "make_batch_proof: at least one index required");

  for (const std::uint64_t position : positions) {
    const BytesView value = tree.node(0, position);
    proof.leaves.emplace_back(LeafIndex{position},
                              Bytes(value.begin(), value.end()));
  }

  // Walk upward; emit a sibling only when the verifier cannot derive it.
  std::vector<std::uint64_t> frontier = positions;
  for (unsigned level = 0; level < tree.height(); ++level) {
    std::vector<std::uint64_t> parents;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::uint64_t position = frontier[i];
      const std::uint64_t sibling = position ^ 1;
      const bool sibling_known =
          (i + 1 < frontier.size() && frontier[i + 1] == sibling);
      if (sibling_known) {
        ++i;  // the pair merges; consume both
      } else {
        const BytesView value = tree.node(level, sibling);
        proof.siblings.emplace_back(value.begin(), value.end());
      }
      parents.push_back(position >> 1);
    }
    frontier = std::move(parents);
  }
  return proof;
}

BatchProof merge_proofs(std::span<const MerkleProof> proofs) {
  check(!proofs.empty(), "merge_proofs: at least one proof required");
  const std::size_t height = proofs.front().siblings.size();
  const std::uint64_t padded = std::uint64_t{1} << height;

  // Collect every known node value: proven leaves plus each path's
  // siblings, keyed by (level, position). Conflicts mean the proofs do not
  // belong to one tree.
  std::map<std::pair<unsigned, std::uint64_t>, Bytes> known;
  std::vector<std::uint64_t> positions;
  for (const MerkleProof& proof : proofs) {
    check(proof.siblings.size() == height,
          "merge_proofs: proofs have differing heights (", height, " vs ",
          proof.siblings.size(), ")");
    check(proof.index.value < padded, "merge_proofs: index ",
          proof.index.value, " exceeds tree width");
    positions.push_back(proof.index.value);

    const auto record = [&known](unsigned level, std::uint64_t position,
                                 const Bytes& value) {
      const auto [it, inserted] = known.try_emplace({level, position}, value);
      check(inserted || it->second == value,
            "merge_proofs: conflicting values for node (level=", level,
            ", position=", position, ")");
    };
    record(0, proof.index.value, proof.leaf_value);
    for (unsigned level = 0; level < height; ++level) {
      record(level, (proof.index.value >> level) ^ 1, proof.siblings[level]);
    }
  }

  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());

  BatchProof batch;
  batch.padded_leaf_count = padded;
  for (const std::uint64_t position : positions) {
    batch.leaves.emplace_back(LeafIndex{position},
                              known.at({0u, position}));
  }

  // Same upward walk as make_batch_proof, pulling the needed siblings from
  // the collected map instead of the tree.
  std::vector<std::uint64_t> frontier = positions;
  for (unsigned level = 0; level < height; ++level) {
    std::vector<std::uint64_t> parents;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::uint64_t position = frontier[i];
      const std::uint64_t sibling = position ^ 1;
      const bool sibling_known =
          (i + 1 < frontier.size() && frontier[i + 1] == sibling);
      if (sibling_known) {
        ++i;
      } else {
        const auto it = known.find({level, sibling});
        check(it != known.end(),
              "merge_proofs: missing sibling (level=", level,
              ", position=", sibling, ")");
        batch.siblings.push_back(it->second);
      }
      parents.push_back(position >> 1);
    }
    frontier = std::move(parents);
  }
  return batch;
}

Bytes compute_batch_root(const BatchProof& proof, const HashFunction& hash) {
  check(is_power_of_two(proof.padded_leaf_count),
        "compute_batch_root: padded_leaf_count must be a power of two");
  check(!proof.leaves.empty(), "compute_batch_root: no proven leaves");

  // Current level: position -> Φ value, kept sorted by construction.
  std::vector<std::pair<std::uint64_t, Bytes>> level_nodes;
  level_nodes.reserve(proof.leaves.size());
  std::uint64_t previous = 0;
  bool first = true;
  for (const auto& [index, value] : proof.leaves) {
    check(index.value < proof.padded_leaf_count,
          "compute_batch_root: leaf position ", index.value, " out of range");
    check(first || index.value > previous,
          "compute_batch_root: leaf positions must be strictly increasing");
    previous = index.value;
    first = false;
    level_nodes.emplace_back(index.value, value);
  }

  std::size_t next_sibling = 0;
  std::uint64_t width = proof.padded_leaf_count;
  while (width > 1) {
    std::vector<std::pair<std::uint64_t, Bytes>> parents;
    for (std::size_t i = 0; i < level_nodes.size(); ++i) {
      const std::uint64_t position = level_nodes[i].first;
      const std::uint64_t sibling_position = position ^ 1;
      const Bytes* sibling = nullptr;
      if (i + 1 < level_nodes.size() &&
          level_nodes[i + 1].first == sibling_position) {
        sibling = &level_nodes[i + 1].second;
      }

      Bytes parent_value(hash.digest_size());
      if (sibling != nullptr) {
        hash.hash_pair(level_nodes[i].second, *sibling, parent_value);
        ++i;  // consumed the pair
      } else {
        check(next_sibling < proof.siblings.size(),
              "compute_batch_root: sibling stream exhausted");
        const Bytes& provided = proof.siblings[next_sibling++];
        if ((position & 1) == 0) {
          hash.hash_pair(level_nodes[i].second, provided, parent_value);
        } else {
          hash.hash_pair(provided, level_nodes[i].second, parent_value);
        }
      }
      parents.emplace_back(position >> 1, std::move(parent_value));
    }
    level_nodes = std::move(parents);
    width >>= 1;
  }

  check(next_sibling == proof.siblings.size(),
        "compute_batch_root: ", proof.siblings.size() - next_sibling,
        " unconsumed siblings");
  check(level_nodes.size() == 1,
        "compute_batch_root: did not converge to a single root");
  return std::move(level_nodes.front().second);
}

bool verify_batch_proof(const BatchProof& proof, BytesView expected_root,
                        const HashFunction& hash) {
  try {
    return equal_bytes(compute_batch_root(proof, hash), expected_root);
  } catch (const Error&) {
    return false;
  }
}

}  // namespace ugc
