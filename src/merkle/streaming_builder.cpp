#include "merkle/streaming_builder.h"

#include "common/error.h"
#include "merkle/geometry.h"
#include "merkle/tree.h"

namespace ugc {

StreamingMerkleBuilder::StreamingMerkleBuilder(const HashFunction& hash,
                                               NodeCallback on_node)
    : hash_(hash), on_node_(std::move(on_node)), scratch_(hash.digest_size()) {}

void StreamingMerkleBuilder::add_leaf(BytesView value) {
  check(!finished_, "StreamingMerkleBuilder: add_leaf after finish");
  push(value);
  ++leaf_count_;
}

void StreamingMerkleBuilder::emit(unsigned height, BytesView value) {
  if (emitted_.size() <= height) {
    emitted_.resize(height + 1, 0);
  }
  on_node_(height, emitted_[height]++, value);
}

void StreamingMerkleBuilder::push(BytesView value) {
  unsigned height = 0;
  if (on_node_) {
    emit(height, value);
  }
  for (;;) {
    if (pending_.size() <= height) {
      pending_.resize(height + 1);
      occupied_.resize(height + 1, 0);
    }
    if (!occupied_[height]) {
      pending_[height].assign(value.begin(), value.end());
      occupied_[height] = 1;
      return;
    }
    // Carry: merge the waiting left subtree with this right subtree. After
    // the first pass, `value` aliases scratch_ — hash_pair consumes both
    // inputs before writing out, so in-place carries are safe.
    hash_.hash_pair(pending_[height], value, scratch_);
    occupied_[height] = 0;
    value = BytesView(scratch_);
    ++height;
    if (on_node_) {
      emit(height, value);
    }
  }
}

Bytes StreamingMerkleBuilder::finish() {
  check(!finished_, "StreamingMerkleBuilder: finish called twice");
  check(leaf_count_ > 0, "StreamingMerkleBuilder: no leaves added");
  finished_ = true;

  const std::uint64_t padded = next_power_of_two(leaf_count_);
  const Bytes pad = padding_leaf(hash_);
  for (std::uint64_t i = leaf_count_; i < padded; ++i) {
    push(pad);
  }

  // Exactly one pending entry remains: the root.
  for (std::size_t h = 0; h < pending_.size(); ++h) {
    if (occupied_[h]) {
      check(h + 1 == pending_.size(),
            "StreamingMerkleBuilder: internal carry invariant violated");
      return std::move(pending_[h]);
    }
  }
  throw Error("StreamingMerkleBuilder: no root after finish");
}

}  // namespace ugc
