#include "merkle/streaming_builder.h"

#include "common/error.h"
#include "merkle/tree.h"

namespace ugc {

StreamingMerkleBuilder::StreamingMerkleBuilder(const HashFunction& hash,
                                               NodeCallback on_node)
    : hash_(hash), on_node_(std::move(on_node)) {}

void StreamingMerkleBuilder::add_leaf(BytesView value) {
  check(!finished_, "StreamingMerkleBuilder: add_leaf after finish");
  push(Bytes(value.begin(), value.end()));
  ++leaf_count_;
}

void StreamingMerkleBuilder::push(Bytes value) {
  unsigned height = 0;
  if (on_node_) {
    if (emitted_.size() <= height) emitted_.resize(height + 1, 0);
    on_node_(height, emitted_[height]++, value);
  }
  for (;;) {
    if (pending_.size() <= height) {
      pending_.resize(height + 1);
    }
    if (!pending_[height].has_value()) {
      pending_[height] = std::move(value);
      return;
    }
    // Carry: merge the waiting left subtree with this right subtree.
    value = hash_.hash(concat_bytes(*pending_[height], value));
    pending_[height].reset();
    ++height;
    if (on_node_) {
      if (emitted_.size() <= height) emitted_.resize(height + 1, 0);
      on_node_(height, emitted_[height]++, value);
    }
  }
}

Bytes StreamingMerkleBuilder::finish() {
  check(!finished_, "StreamingMerkleBuilder: finish called twice");
  check(leaf_count_ > 0, "StreamingMerkleBuilder: no leaves added");
  finished_ = true;

  const std::uint64_t padded = next_power_of_two(leaf_count_);
  const Bytes pad = padding_leaf(hash_);
  for (std::uint64_t i = leaf_count_; i < padded; ++i) {
    push(pad);
  }

  // Exactly one pending entry remains: the root.
  for (std::size_t h = 0; h < pending_.size(); ++h) {
    if (pending_[h].has_value()) {
      check(h + 1 == pending_.size(),
            "StreamingMerkleBuilder: internal carry invariant violated");
      return std::move(*pending_[h]);
    }
  }
  throw Error("StreamingMerkleBuilder: no root after finish");
}

}  // namespace ugc
