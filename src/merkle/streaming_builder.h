#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "crypto/hash_function.h"

namespace ugc {

// Computes a Merkle root over a stream of leaves with O(log n) working memory
// (binary-counter carry merging). This is how a participant working through a
// large domain commits without ever materializing the full tree.
//
// An optional NodeCallback observes every node as it is finalized —
// (height, index-within-level, Φ value) — which is how PartialMerkleTree
// captures just the top levels it stores (§3.3). The view passed to the
// callback is only valid for the duration of the call.
//
// The carry path is allocation-free in steady state: each merge streams both
// children through HashFunction::hash_pair into a preallocated scratch
// digest, and the per-height pending slots reuse their capacity.
class StreamingMerkleBuilder {
 public:
  using NodeCallback =
      std::function<void(unsigned height, std::uint64_t index, BytesView)>;

  explicit StreamingMerkleBuilder(const HashFunction& hash,
                                  NodeCallback on_node = nullptr);

  // Appends the next leaf value (Φ(L_i) = f(x_i)).
  void add_leaf(BytesView value);

  // Pads the stream to the next power of two and returns the root Φ(R).
  // The builder is spent afterwards.
  Bytes finish();

  std::uint64_t leaf_count() const { return leaf_count_; }

 private:
  void push(BytesView value);
  void emit(unsigned height, BytesView value);

  const HashFunction& hash_;
  NodeCallback on_node_;
  // pending_[h] holds the root of a finished 2^h-leaf subtree awaiting its
  // right-hand sibling; occupied_[h] says whether the slot is live. Split
  // from std::optional so a refill reuses the Bytes capacity.
  std::vector<Bytes> pending_;
  std::vector<char> occupied_;
  // Carry target for hash_pair — sized to one digest once, then reused.
  Bytes scratch_;
  // Number of nodes finalized at each height so far (for callback indices).
  std::vector<std::uint64_t> emitted_;
  std::uint64_t leaf_count_ = 0;
  bool finished_ = false;
};

}  // namespace ugc
