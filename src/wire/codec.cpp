#include "wire/codec.h"

#include <bit>
#include <cstring>

namespace ugc {

void WireWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  u64(std::bit_cast<std::uint64_t>(v));
}

double WireReader::f64() {
  return std::bit_cast<double>(u64());
}

}  // namespace ugc
