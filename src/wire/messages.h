#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "core/protocol.h"
#include "core/ringer.h"
#include "core/scheme_config.h"
#include "scheme/message.h"

namespace ugc {

// Wire message catalogue for the simulated grid. Every message the grid
// exchanges is serialized through this module so that the network meter
// counts real bytes, not struct sizes.
enum class MessageType : std::uint8_t {
  kTaskAssignment = 1,
  kCommitment = 2,
  kSampleChallenge = 3,
  kProofResponse = 4,
  kNiCbsProof = 5,
  kResultsUpload = 6,
  kScreenerReport = 7,
  kRingerReport = 8,
  kVerdict = 9,
  kBatchProofResponse = 10,
  kHello = 11,
  kHelloChallenge = 12,
  kHelloProof = 13,
  kEpochCommitment = 14,
  kEpochChallenge = 15,
  kEpochProofResponse = 16,
  kEpochAck = 17,
  kEpochResume = 18,
};

const char* to_string(MessageType type);

// Supervisor -> participant (possibly via broker): evaluate `workload` over
// [domain_begin, domain_end) under the given verification scheme. The
// participant resolves the workload name through the WorkloadRegistry, as a
// real grid client would resolve a downloaded work unit.
struct TaskAssignment {
  TaskId task;
  std::uint64_t domain_begin = 0;
  std::uint64_t domain_end = 0;
  std::string workload;
  std::uint64_t workload_seed = 0;
  SchemeConfig scheme;
  // Planted images for the ringer scheme (empty otherwise).
  std::vector<Bytes> ringer_images;

  friend bool operator==(const TaskAssignment&, const TaskAssignment&) =
      default;
};

// (ResultsUpload lives in core/protocol.h with the other protocol value
// types; it is re-exported here through that include.)

// Participant -> supervisor, first frame on a real (TCP) connection: "I am
// a worker, speaking protocol `protocol`, calling myself `agent`". The
// supervisor registers the connection as an assignment slot (or drops it on
// a protocol mismatch). Task-less control traffic — the simulated grid
// never sends it (registration there is SimTransport::add_node), and grid
// nodes ignore it if it ever reaches them.
struct Hello {
  // Independent of the wire-envelope version: bumps when the *handshake or
  // grid semantics* change incompatibly, not when a message gains a field.
  std::uint16_t protocol = 1;
  std::string agent;

  friend bool operator==(const Hello&, const Hello&) = default;
};

// The handshake revision gridd/gridworker currently speak.
inline constexpr std::uint16_t kGridProtocol = 1;

// ---------------------------------------------------------------------------
// Authenticated handshake (src/auth). Strictly additive message types: the
// plaintext Hello above keeps its wire bytes and its meaning on grids that
// do not require authentication (SimTransport, tests). On an authenticated
// grid the supervisor opens every accepted connection with a HelloChallenge
// and the worker answers with a HelloProof; nothing else is accepted first.
// The protocol fields, key/mac derivations, and the threat model live in
// auth/handshake.h — these structs are just the bytes.
// ---------------------------------------------------------------------------

// Supervisor -> connecting worker, first frame on an authenticated grid:
// "prove who you are against this fresh nonce".
struct HelloChallenge {
  std::uint16_t protocol = 1;  // same revision space as Hello::protocol
  Bytes nonce;                 // auth::kHandshakeNonceSize random bytes

  friend bool operator==(const HelloChallenge&, const HelloChallenge&) =
      default;
};

// Worker -> supervisor, answering a HelloChallenge: the worker's public
// identity key (whose digest is its durable worker id) plus an HMAC over
// nonce‖protocol‖agent proving the proof was minted for this connection —
// a recorded proof replayed against a later nonce fails the MAC.
struct HelloProof {
  std::uint16_t protocol = 1;
  std::string agent;
  Bytes public_key;  // auth::kPublicKeySize bytes
  Bytes mac;         // HMAC-SHA256, see auth::hello_proof_mac

  friend bool operator==(const HelloProof&, const HelloProof&) = default;
};

// Supervisor -> reconnecting participant, sent immediately before the
// re-sent TaskAssignment of a pipelined task: "your first `epoch` epochs are
// already verified — resume there instead of recomputing from scratch".
// Grid-only control traffic (like TaskAssignment, it never enters a scheme
// session; the participant node folds it into the session context).
struct EpochResume {
  TaskId task;
  std::uint64_t epoch = 0;  // first epoch still unverified

  friend bool operator==(const EpochResume&, const EpochResume&) = default;
};

using Message =
    std::variant<TaskAssignment, Commitment, SampleChallenge, ProofResponse,
                 NiCbsProof, ResultsUpload, ScreenerReport, RingerReport,
                 Verdict, BatchProofResponse, Hello, HelloChallenge,
                 HelloProof, EpochCommitment, EpochChallenge,
                 EpochProofResponse, EpochAck, EpochResume>;

MessageType message_type(const Message& message);

// Serializes `message` with a [type u8 | version u16] envelope.
Bytes encode_message(const Message& message);

// Same bytes as encode_message, written into `out` (cleared first) while
// reusing its capacity — the zero-allocation path for per-session / pooled
// encode scratch buffers.
void encode_message_into(const Message& message, Bytes& out);

// Parses an envelope + payload. Throws WireError on any malformed input
// (unknown type, bad version, truncation, trailing bytes, out-of-range
// enums). Never crashes on hostile bytes.
Message decode_message(BytesView data);

// ---------------------------------------------------------------------------
// Zero-copy decode. The proof-carrying responses dominate supervisor inbound
// traffic, and their owning decode allocates one Bytes per result and per
// sibling. The view decoders instead return span-backed views straight into
// the encoded buffer (core/protocol.h view structs); the spans live in a
// caller-owned arena that is reused across calls, so steady-state decoding
// allocates nothing. Views are valid only while both `data` and the arena
// outlive them — exactly the receive-verify-discard lifetime of the
// supervisor hot loop, which pairs these with the VerifyScratch overloads of
// verify_sample_proofs / verify_batch_response.
// ---------------------------------------------------------------------------

// Backing storage for decoded message views. Implementation detail —
// construct once, reuse freely; each decode clears and refills it.
struct WireViewArena {
  std::vector<SampleProofView> proofs;
  std::vector<BatchResultView> results;
  std::vector<BytesView> siblings;
  std::vector<std::pair<std::size_t, std::size_t>> extents;
};

// Decodes an encoded kProofResponse envelope (as produced by
// encode_message/encode_scheme_message) without copying any payload bytes.
// Throws WireError on malformed input or a different message type.
ProofResponseView decode_proof_response_view(BytesView data,
                                             WireViewArena& arena);

// Likewise for kBatchProofResponse.
BatchProofResponseView decode_batch_proof_response_view(BytesView data,
                                                        WireViewArena& arena);

// ---------------------------------------------------------------------------
// SchemeMessage <-> Message bridging. Every SchemeMessage alternative is
// also a Message alternative, so scheme traffic reuses the grid envelope
// (and round-trips by construction); the reverse conversion filters out the
// grid-only types (assignment, screener report, verdict).
// ---------------------------------------------------------------------------

Message to_message(const SchemeMessage& message);
std::optional<SchemeMessage> to_scheme_message(const Message& message);

// Serializes a scheme session's message with the standard envelope — what a
// real transport ships between a ParticipantSession and a SupervisorSession.
Bytes encode_scheme_message(const SchemeMessage& message);

// Capacity-reusing variant (see encode_message_into).
void encode_scheme_message_into(const SchemeMessage& message, Bytes& out);

// Parses an envelope + payload and requires the result to be scheme
// traffic; grid-only message types throw WireError.
SchemeMessage decode_scheme_message(BytesView data);

}  // namespace ugc
