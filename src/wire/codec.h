#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace ugc {

// Raised on any malformed wire input (truncation, oversized lengths,
// varint overflow). Protocol code converts this into a kMalformed verdict
// rather than letting it escape.
class WireError : public Error {
 public:
  explicit WireError(const std::string& what_arg) : Error(what_arg) {}
};

// Append-only binary encoder. Integers are little-endian fixed-width or
// LEB128 varints; byte strings are varint-length-prefixed.
class WireWriter {
 public:
  WireWriter() = default;

  // Builds on top of a recycled buffer: clears the contents but keeps the
  // capacity, so steady-state encoding through a per-session (or pooled)
  // scratch buffer never allocates.
  explicit WireWriter(Bytes&& recycled) : buffer_(std::move(recycled)) {
    buffer_.clear();
  }

  void u8(std::uint8_t v) { buffer_.push_back(v); }

  void u16(std::uint16_t v) {
    buffer_.push_back(static_cast<std::uint8_t>(v));
    buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  // Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buffer_.push_back(static_cast<std::uint8_t>(v));
  }

  void f64(double v);

  // Length-prefixed byte string.
  void bytes(BytesView data) {
    varint(data.size());
    append(buffer_, data);
  }

  void str(std::string_view text) {
    varint(text.size());
    for (char c : text) {
      buffer_.push_back(static_cast<std::uint8_t>(c));
    }
  }

  // Raw append, no length prefix (caller knows the framing).
  void raw(BytesView data) { append(buffer_, data); }

  const Bytes& buffer() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

// Bounds-checked decoder over a byte view. Every read throws WireError on
// truncation; length prefixes are validated against the remaining input so
// hostile lengths cannot trigger huge allocations.
class WireReader {
 public:
  explicit WireReader(BytesView data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[cursor_++];
  }

  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[cursor_] | (data_[cursor_ + 1] << 8));
    cursor_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | data_[cursor_ + static_cast<std::size_t>(i)];
    }
    cursor_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | data_[cursor_ + static_cast<std::size_t>(i)];
    }
    cursor_ += 8;
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      need(1);
      const std::uint8_t byte = data_[cursor_++];
      if (shift == 63 && (byte & 0x7e) != 0) {
        throw WireError("varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return v;
      }
      shift += 7;
      if (shift > 63) {
        throw WireError("varint too long");
      }
    }
  }

  double f64();

  Bytes bytes() {
    const BytesView v = view();
    return Bytes(v.begin(), v.end());
  }

  // Zero-copy variant of bytes(): a length-prefixed read returning a view
  // into the input buffer, valid as long as that buffer lives. The backbone
  // of the view-decoding path (decode_proof_response_view).
  BytesView view() {
    const std::uint64_t length = varint();
    need(length);
    const BytesView out = data_.subspan(cursor_, length);
    cursor_ += length;
    return out;
  }

  std::string str() {
    const Bytes raw = bytes();
    return to_string(raw);
  }

  std::size_t remaining() const { return data_.size() - cursor_; }
  bool done() const { return remaining() == 0; }

  // Throws unless the whole input was consumed — catches trailing garbage.
  void expect_done() const {
    if (!done()) {
      throw WireError(concat(remaining(), " trailing bytes after message"));
    }
  }

 private:
  void need(std::uint64_t count) const {
    if (count > remaining()) {
      throw WireError(concat("truncated input: need ", count, " bytes, have ",
                             remaining()));
    }
  }

  BytesView data_;
  std::size_t cursor_ = 0;
};

}  // namespace ugc
