#include "wire/messages.h"

#include "wire/codec.h"

namespace ugc {

namespace {

// v2: SchemeConfig carries a registry name and the CBS SPRT parameters.
constexpr std::uint16_t kWireVersion = 2;

// ------------------------------------------------------------ enum codecs

std::uint8_t to_u8(HashAlgorithm algorithm) {
  return static_cast<std::uint8_t>(algorithm);
}

HashAlgorithm hash_algorithm_from(std::uint8_t raw) {
  switch (raw) {
    case static_cast<std::uint8_t>(HashAlgorithm::kMd5):
      return HashAlgorithm::kMd5;
    case static_cast<std::uint8_t>(HashAlgorithm::kSha1):
      return HashAlgorithm::kSha1;
    case static_cast<std::uint8_t>(HashAlgorithm::kSha256):
      return HashAlgorithm::kSha256;
  }
  throw WireError(concat("unknown hash algorithm ", int{raw}));
}

LeafMode leaf_mode_from(std::uint8_t raw) {
  switch (raw) {
    case static_cast<std::uint8_t>(LeafMode::kRaw):
      return LeafMode::kRaw;
    case static_cast<std::uint8_t>(LeafMode::kHashed):
      return LeafMode::kHashed;
  }
  throw WireError(concat("unknown leaf mode ", int{raw}));
}

SchemeKind scheme_kind_from(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(SchemeKind::kRinger)) {
    throw WireError(concat("unknown scheme kind ", int{raw}));
  }
  return static_cast<SchemeKind>(raw);
}

VerdictStatus verdict_status_from(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(VerdictStatus::kAborted)) {
    throw WireError(concat("unknown verdict status ", int{raw}));
  }
  return static_cast<VerdictStatus>(raw);
}

// -------------------------------------------------------- nested structs

void write_tree_settings(WireWriter& w, const TreeSettings& t) {
  w.u8(to_u8(t.tree_hash));
  w.u8(static_cast<std::uint8_t>(t.leaf_mode));
  w.u32(t.storage_subtree_height);
}

TreeSettings read_tree_settings(WireReader& r) {
  TreeSettings t;
  t.tree_hash = hash_algorithm_from(r.u8());
  t.leaf_mode = leaf_mode_from(r.u8());
  t.storage_subtree_height = r.u32();
  return t;
}

void write_scheme_config(WireWriter& w, const SchemeConfig& c) {
  w.u8(static_cast<std::uint8_t>(c.kind));
  w.str(c.name);
  w.varint(c.double_check.replicas);
  w.varint(c.naive.sample_count);
  write_tree_settings(w, c.cbs.tree);
  w.varint(c.cbs.sample_count);
  w.u8(c.cbs.sample_with_replacement ? 1 : 0);
  w.u8(c.cbs.use_batch_proofs ? 1 : 0);
  w.u8(c.cbs.use_sprt ? 1 : 0);
  w.f64(c.cbs.sprt.pass_prob_honest);
  w.f64(c.cbs.sprt.pass_prob_cheater);
  w.f64(c.cbs.sprt.false_reject);
  w.f64(c.cbs.sprt.false_accept);
  w.varint(c.cbs.sprt.max_samples);
  write_tree_settings(w, c.nicbs.tree);
  w.varint(c.nicbs.sample_count);
  w.u8(to_u8(c.nicbs.sample_hash));
  w.varint(c.nicbs.sample_hash_iterations);
  w.varint(c.ringer.ringer_count);
  w.u64(c.ringer.seed);
}

SchemeConfig read_scheme_config(WireReader& r) {
  SchemeConfig c;
  c.kind = scheme_kind_from(r.u8());
  c.name = r.str();
  c.double_check.replicas = r.varint();
  c.naive.sample_count = r.varint();
  c.cbs.tree = read_tree_settings(r);
  c.cbs.sample_count = r.varint();
  c.cbs.sample_with_replacement = r.u8() != 0;
  c.cbs.use_batch_proofs = r.u8() != 0;
  c.cbs.use_sprt = r.u8() != 0;
  c.cbs.sprt.pass_prob_honest = r.f64();
  c.cbs.sprt.pass_prob_cheater = r.f64();
  c.cbs.sprt.false_reject = r.f64();
  c.cbs.sprt.false_accept = r.f64();
  c.cbs.sprt.max_samples = r.varint();
  c.nicbs.tree = read_tree_settings(r);
  c.nicbs.sample_count = r.varint();
  c.nicbs.sample_hash = hash_algorithm_from(r.u8());
  c.nicbs.sample_hash_iterations = r.varint();
  c.ringer.ringer_count = r.varint();
  c.ringer.seed = r.u64();
  return c;
}

void write_commitment(WireWriter& w, const Commitment& c) {
  w.u64(c.task.value);
  w.varint(c.leaf_count);
  w.bytes(c.root);
}

Commitment read_commitment(WireReader& r) {
  Commitment c;
  c.task = TaskId{r.u64()};
  c.leaf_count = r.varint();
  c.root = r.bytes();
  return c;
}

void write_proof_response(WireWriter& w, const ProofResponse& response) {
  w.u64(response.task.value);
  w.varint(response.proofs.size());
  for (const SampleProof& proof : response.proofs) {
    w.varint(proof.index.value);
    w.bytes(proof.result);
    w.varint(proof.siblings.size());
    for (const Bytes& sibling : proof.siblings) {
      w.bytes(sibling);
    }
  }
}

ProofResponse read_proof_response(WireReader& r) {
  ProofResponse response;
  response.task = TaskId{r.u64()};
  const std::uint64_t proof_count = r.varint();
  for (std::uint64_t i = 0; i < proof_count; ++i) {
    SampleProof proof;
    proof.index = LeafIndex{r.varint()};
    proof.result = r.bytes();
    const std::uint64_t sibling_count = r.varint();
    for (std::uint64_t s = 0; s < sibling_count; ++s) {
      proof.siblings.push_back(r.bytes());
    }
    response.proofs.push_back(std::move(proof));
  }
  return response;
}

// --------------------------------------------------------- per-message

void encode_payload(WireWriter& w, const TaskAssignment& m) {
  w.u64(m.task.value);
  w.u64(m.domain_begin);
  w.u64(m.domain_end);
  w.str(m.workload);
  w.u64(m.workload_seed);
  write_scheme_config(w, m.scheme);
  w.varint(m.ringer_images.size());
  for (const Bytes& image : m.ringer_images) {
    w.bytes(image);
  }
  // Trailing-optional pipeline section: written only for non-default
  // configs, so every pre-pipeline assignment keeps its exact v2 bytes
  // (pinned by the wire golden test) and old decoders reading a classic
  // assignment see nothing new.
  if (m.scheme.pipeline != PipelineConfig{}) {
    w.varint(m.scheme.pipeline.epochs);
    w.varint(m.scheme.pipeline.samples_per_epoch);
    w.varint(m.scheme.pipeline.max_inflight);
    w.varint(m.scheme.pipeline.window_epochs);
  }
}

TaskAssignment decode_task_assignment(WireReader& r) {
  TaskAssignment m;
  m.task = TaskId{r.u64()};
  m.domain_begin = r.u64();
  m.domain_end = r.u64();
  m.workload = r.str();
  m.workload_seed = r.u64();
  m.scheme = read_scheme_config(r);
  const std::uint64_t image_count = r.varint();
  for (std::uint64_t i = 0; i < image_count; ++i) {
    m.ringer_images.push_back(r.bytes());
  }
  if (!r.done()) {  // the optional pipeline section (see encode_payload)
    m.scheme.pipeline.epochs = r.varint();
    m.scheme.pipeline.samples_per_epoch = r.varint();
    m.scheme.pipeline.max_inflight = r.varint();
    m.scheme.pipeline.window_epochs = r.varint();
  }
  return m;
}

void encode_payload(WireWriter& w, const Commitment& m) {
  write_commitment(w, m);
}

void encode_payload(WireWriter& w, const SampleChallenge& m) {
  w.u64(m.task.value);
  w.varint(m.samples.size());
  for (const LeafIndex index : m.samples) {
    w.varint(index.value);
  }
}

SampleChallenge decode_sample_challenge(WireReader& r) {
  SampleChallenge m;
  m.task = TaskId{r.u64()};
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    m.samples.push_back(LeafIndex{r.varint()});
  }
  return m;
}

void encode_payload(WireWriter& w, const ProofResponse& m) {
  write_proof_response(w, m);
}

void encode_payload(WireWriter& w, const NiCbsProof& m) {
  write_commitment(w, m.commitment);
  write_proof_response(w, m.response);
}

NiCbsProof decode_nicbs_proof(WireReader& r) {
  NiCbsProof m;
  m.commitment = read_commitment(r);
  m.response = read_proof_response(r);
  return m;
}

void encode_payload(WireWriter& w, const ResultsUpload& m) {
  w.u64(m.task.value);
  w.varint(m.results.size());
  for (const Bytes& result : m.results) {
    w.bytes(result);
  }
}

ResultsUpload decode_results_upload(WireReader& r) {
  ResultsUpload m;
  m.task = TaskId{r.u64()};
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    m.results.push_back(r.bytes());
  }
  return m;
}

void encode_payload(WireWriter& w, const ScreenerReport& m) {
  w.u64(m.task.value);
  w.varint(m.hits.size());
  for (const ScreenerHit& hit : m.hits) {
    w.u64(hit.x);
    w.str(hit.report);
  }
}

ScreenerReport decode_screener_report(WireReader& r) {
  ScreenerReport m;
  m.task = TaskId{r.u64()};
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    ScreenerHit hit;
    hit.x = r.u64();
    hit.report = r.str();
    m.hits.push_back(std::move(hit));
  }
  return m;
}

void encode_payload(WireWriter& w, const RingerReport& m) {
  w.u64(m.task.value);
  w.varint(m.found_inputs.size());
  for (const std::uint64_t x : m.found_inputs) {
    w.u64(x);
  }
}

RingerReport decode_ringer_report(WireReader& r) {
  RingerReport m;
  m.task = TaskId{r.u64()};
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    m.found_inputs.push_back(r.u64());
  }
  return m;
}

void encode_payload(WireWriter& w, const BatchProofResponse& m) {
  w.u64(m.task.value);
  w.varint(m.results.size());
  for (const auto& [index, result] : m.results) {
    w.varint(index.value);
    w.bytes(result);
  }
  w.varint(m.siblings.size());
  for (const Bytes& sibling : m.siblings) {
    w.bytes(sibling);
  }
}

BatchProofResponse decode_batch_proof_response(WireReader& r) {
  BatchProofResponse m;
  m.task = TaskId{r.u64()};
  const std::uint64_t result_count = r.varint();
  for (std::uint64_t i = 0; i < result_count; ++i) {
    const LeafIndex index{r.varint()};
    m.results.emplace_back(index, r.bytes());
  }
  const std::uint64_t sibling_count = r.varint();
  for (std::uint64_t i = 0; i < sibling_count; ++i) {
    m.siblings.push_back(r.bytes());
  }
  return m;
}

void encode_payload(WireWriter& w, const Verdict& m) {
  w.u64(m.task.value);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u8(m.failed_sample.has_value() ? 1 : 0);
  if (m.failed_sample.has_value()) {
    w.varint(m.failed_sample->value);
  }
  w.str(m.detail);
}

Verdict decode_verdict(WireReader& r) {
  Verdict m;
  m.task = TaskId{r.u64()};
  m.status = verdict_status_from(r.u8());
  if (r.u8() != 0) {
    m.failed_sample = LeafIndex{r.varint()};
  }
  m.detail = r.str();
  return m;
}

void encode_payload(WireWriter& w, const Hello& m) {
  w.u16(m.protocol);
  w.str(m.agent);
}

Hello decode_hello(WireReader& r) {
  Hello m;
  m.protocol = r.u16();
  m.agent = r.str();
  return m;
}

void encode_payload(WireWriter& w, const HelloChallenge& m) {
  w.u16(m.protocol);
  w.bytes(m.nonce);
}

HelloChallenge decode_hello_challenge(WireReader& r) {
  HelloChallenge m;
  m.protocol = r.u16();
  m.nonce = r.bytes();
  return m;
}

void encode_payload(WireWriter& w, const HelloProof& m) {
  w.u16(m.protocol);
  w.str(m.agent);
  w.bytes(m.public_key);
  w.bytes(m.mac);
}

HelloProof decode_hello_proof(WireReader& r) {
  HelloProof m;
  m.protocol = r.u16();
  m.agent = r.str();
  m.public_key = r.bytes();
  m.mac = r.bytes();
  return m;
}

void encode_payload(WireWriter& w, const EpochCommitment& m) {
  w.u64(m.task.value);
  w.varint(m.epoch);
  w.varint(m.epoch_count);
  write_commitment(w, m.commitment);
}

EpochCommitment decode_epoch_commitment(WireReader& r) {
  EpochCommitment m;
  m.task = TaskId{r.u64()};
  m.epoch = r.varint();
  m.epoch_count = r.varint();
  m.commitment = read_commitment(r);
  return m;
}

void encode_payload(WireWriter& w, const EpochChallenge& m) {
  w.u64(m.task.value);
  w.varint(m.epoch);
  w.varint(m.samples.size());
  for (const LeafIndex index : m.samples) {
    w.varint(index.value);
  }
}

EpochChallenge decode_epoch_challenge(WireReader& r) {
  EpochChallenge m;
  m.task = TaskId{r.u64()};
  m.epoch = r.varint();
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    m.samples.push_back(LeafIndex{r.varint()});
  }
  return m;
}

void encode_payload(WireWriter& w, const EpochProofResponse& m) {
  w.u64(m.task.value);
  w.varint(m.epoch);
  write_proof_response(w, m.response);
}

EpochProofResponse decode_epoch_proof_response(WireReader& r) {
  EpochProofResponse m;
  m.task = TaskId{r.u64()};
  m.epoch = r.varint();
  m.response = read_proof_response(r);
  return m;
}

void encode_payload(WireWriter& w, const EpochAck& m) {
  w.u64(m.task.value);
  w.varint(m.epoch);
}

EpochAck decode_epoch_ack(WireReader& r) {
  EpochAck m;
  m.task = TaskId{r.u64()};
  m.epoch = r.varint();
  return m;
}

void encode_payload(WireWriter& w, const EpochResume& m) {
  w.u64(m.task.value);
  w.varint(m.epoch);
}

EpochResume decode_epoch_resume(WireReader& r) {
  EpochResume m;
  m.task = TaskId{r.u64()};
  m.epoch = r.varint();
  return m;
}

}  // namespace

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kTaskAssignment:
      return "task-assignment";
    case MessageType::kCommitment:
      return "commitment";
    case MessageType::kSampleChallenge:
      return "sample-challenge";
    case MessageType::kProofResponse:
      return "proof-response";
    case MessageType::kNiCbsProof:
      return "nicbs-proof";
    case MessageType::kResultsUpload:
      return "results-upload";
    case MessageType::kScreenerReport:
      return "screener-report";
    case MessageType::kRingerReport:
      return "ringer-report";
    case MessageType::kVerdict:
      return "verdict";
    case MessageType::kBatchProofResponse:
      return "batch-proof-response";
    case MessageType::kHello:
      return "hello";
    case MessageType::kHelloChallenge:
      return "hello-challenge";
    case MessageType::kHelloProof:
      return "hello-proof";
    case MessageType::kEpochCommitment:
      return "epoch-commitment";
    case MessageType::kEpochChallenge:
      return "epoch-challenge";
    case MessageType::kEpochProofResponse:
      return "epoch-proof-response";
    case MessageType::kEpochAck:
      return "epoch-ack";
    case MessageType::kEpochResume:
      return "epoch-resume";
  }
  return "unknown";
}

MessageType message_type(const Message& message) {
  struct Visitor {
    MessageType operator()(const TaskAssignment&) {
      return MessageType::kTaskAssignment;
    }
    MessageType operator()(const Commitment&) {
      return MessageType::kCommitment;
    }
    MessageType operator()(const SampleChallenge&) {
      return MessageType::kSampleChallenge;
    }
    MessageType operator()(const ProofResponse&) {
      return MessageType::kProofResponse;
    }
    MessageType operator()(const NiCbsProof&) {
      return MessageType::kNiCbsProof;
    }
    MessageType operator()(const ResultsUpload&) {
      return MessageType::kResultsUpload;
    }
    MessageType operator()(const ScreenerReport&) {
      return MessageType::kScreenerReport;
    }
    MessageType operator()(const RingerReport&) {
      return MessageType::kRingerReport;
    }
    MessageType operator()(const Verdict&) { return MessageType::kVerdict; }
    MessageType operator()(const BatchProofResponse&) {
      return MessageType::kBatchProofResponse;
    }
    MessageType operator()(const Hello&) { return MessageType::kHello; }
    MessageType operator()(const HelloChallenge&) {
      return MessageType::kHelloChallenge;
    }
    MessageType operator()(const HelloProof&) {
      return MessageType::kHelloProof;
    }
    MessageType operator()(const EpochCommitment&) {
      return MessageType::kEpochCommitment;
    }
    MessageType operator()(const EpochChallenge&) {
      return MessageType::kEpochChallenge;
    }
    MessageType operator()(const EpochProofResponse&) {
      return MessageType::kEpochProofResponse;
    }
    MessageType operator()(const EpochAck&) { return MessageType::kEpochAck; }
    MessageType operator()(const EpochResume&) {
      return MessageType::kEpochResume;
    }
  };
  return std::visit(Visitor{}, message);
}

Bytes encode_message(const Message& message) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(message_type(message)));
  writer.u16(kWireVersion);
  std::visit([&writer](const auto& m) { encode_payload(writer, m); }, message);
  return writer.take();
}

void encode_message_into(const Message& message, Bytes& out) {
  WireWriter writer(std::move(out));
  writer.u8(static_cast<std::uint8_t>(message_type(message)));
  writer.u16(kWireVersion);
  std::visit([&writer](const auto& m) { encode_payload(writer, m); }, message);
  out = writer.take();
}

Message decode_message(BytesView data) {
  WireReader reader(data);
  const std::uint8_t type = reader.u8();
  const std::uint16_t version = reader.u16();
  if (version != kWireVersion) {
    throw WireError(concat("unsupported wire version ", version));
  }

  Message message = [&]() -> Message {
    switch (static_cast<MessageType>(type)) {
      case MessageType::kTaskAssignment:
        return decode_task_assignment(reader);
      case MessageType::kCommitment:
        return read_commitment(reader);
      case MessageType::kSampleChallenge:
        return decode_sample_challenge(reader);
      case MessageType::kProofResponse:
        return read_proof_response(reader);
      case MessageType::kNiCbsProof:
        return decode_nicbs_proof(reader);
      case MessageType::kResultsUpload:
        return decode_results_upload(reader);
      case MessageType::kScreenerReport:
        return decode_screener_report(reader);
      case MessageType::kRingerReport:
        return decode_ringer_report(reader);
      case MessageType::kVerdict:
        return decode_verdict(reader);
      case MessageType::kBatchProofResponse:
        return decode_batch_proof_response(reader);
      case MessageType::kHello:
        return decode_hello(reader);
      case MessageType::kHelloChallenge:
        return decode_hello_challenge(reader);
      case MessageType::kHelloProof:
        return decode_hello_proof(reader);
      case MessageType::kEpochCommitment:
        return decode_epoch_commitment(reader);
      case MessageType::kEpochChallenge:
        return decode_epoch_challenge(reader);
      case MessageType::kEpochProofResponse:
        return decode_epoch_proof_response(reader);
      case MessageType::kEpochAck:
        return decode_epoch_ack(reader);
      case MessageType::kEpochResume:
        return decode_epoch_resume(reader);
    }
    throw WireError(concat("unknown message type ", int{type}));
  }();

  reader.expect_done();
  return message;
}

Message to_message(const SchemeMessage& message) {
  return std::visit([](const auto& m) -> Message { return m; }, message);
}

std::optional<SchemeMessage> to_scheme_message(const Message& message) {
  return std::visit(
      [](const auto& m) -> std::optional<SchemeMessage> {
        if constexpr (requires { SchemeMessage{m}; }) {
          return SchemeMessage{m};
        } else {
          return std::nullopt;
        }
      },
      message);
}

Bytes encode_scheme_message(const SchemeMessage& message) {
  return encode_message(to_message(message));
}

void encode_scheme_message_into(const SchemeMessage& message, Bytes& out) {
  encode_message_into(to_message(message), out);
}

namespace {

// Parses the [type u8 | version u16] envelope and requires `expected`.
WireReader open_envelope(BytesView data, MessageType expected) {
  WireReader reader(data);
  const std::uint8_t type = reader.u8();
  const std::uint16_t version = reader.u16();
  if (version != kWireVersion) {
    throw WireError(concat("unsupported wire version ", version));
  }
  if (type != static_cast<std::uint8_t>(expected)) {
    throw WireError(concat("expected ", to_string(expected),
                           " envelope, got type ", int{type}));
  }
  return reader;
}

}  // namespace

ProofResponseView decode_proof_response_view(BytesView data,
                                             WireViewArena& arena) {
  WireReader r = open_envelope(data, MessageType::kProofResponse);
  ProofResponseView response;
  response.task = TaskId{r.u64()};

  arena.proofs.clear();
  arena.siblings.clear();
  arena.extents.clear();
  const std::uint64_t proof_count = r.varint();
  for (std::uint64_t i = 0; i < proof_count; ++i) {
    SampleProofView proof;
    proof.index = LeafIndex{r.varint()};
    proof.result = r.view();
    const std::uint64_t sibling_count = r.varint();
    arena.extents.emplace_back(arena.siblings.size(), sibling_count);
    for (std::uint64_t s = 0; s < sibling_count; ++s) {
      arena.siblings.push_back(r.view());
    }
    arena.proofs.push_back(proof);
  }
  r.expect_done();

  // Sibling spans are assigned only now that arena.siblings is stable.
  for (std::size_t i = 0; i < arena.proofs.size(); ++i) {
    arena.proofs[i].siblings = std::span<const BytesView>(
        arena.siblings.data() + arena.extents[i].first,
        arena.extents[i].second);
  }
  response.proofs =
      std::span<const SampleProofView>(arena.proofs.data(),
                                       arena.proofs.size());
  return response;
}

BatchProofResponseView decode_batch_proof_response_view(BytesView data,
                                                        WireViewArena& arena) {
  WireReader r = open_envelope(data, MessageType::kBatchProofResponse);
  BatchProofResponseView response;
  response.task = TaskId{r.u64()};

  arena.results.clear();
  arena.siblings.clear();
  const std::uint64_t result_count = r.varint();
  for (std::uint64_t i = 0; i < result_count; ++i) {
    const LeafIndex index{r.varint()};
    arena.results.push_back(BatchResultView{index, r.view()});
  }
  const std::uint64_t sibling_count = r.varint();
  for (std::uint64_t i = 0; i < sibling_count; ++i) {
    arena.siblings.push_back(r.view());
  }
  r.expect_done();

  response.results = std::span<const BatchResultView>(arena.results.data(),
                                                      arena.results.size());
  response.siblings = std::span<const BytesView>(arena.siblings.data(),
                                                 arena.siblings.size());
  return response;
}

SchemeMessage decode_scheme_message(BytesView data) {
  const Message message = decode_message(data);
  auto scheme_message = to_scheme_message(message);
  if (!scheme_message.has_value()) {
    throw WireError(concat(to_string(message_type(message)),
                           " is not a scheme message"));
  }
  return *std::move(scheme_message);
}

}  // namespace ugc
