#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/hash_function.h"

namespace ugc {

// Step 2 of CBS: the supervisor draws m sample indices uniformly from [0, n).
// The paper draws independently (with replacement).
std::vector<LeafIndex> sample_with_replacement(Rng& rng, std::uint64_t n,
                                               std::size_t m);

// Variant: m distinct indices (requires m <= n); Floyd's algorithm, O(m)
// expected draws and O(m) memory.
std::vector<LeafIndex> sample_without_replacement(Rng& rng, std::uint64_t n,
                                                  std::size_t m);

// Eq. 4 of the paper (NI-CBS): the k-th sample is derived from the committed
// root by iterating the one-way function g,
//
//   i_k = (g^k(Φ(R)) mod n) + 1        (paper, 1-based)
//
// implemented 0-based as read_u64_be(first 8 bytes of g^k(Φ(R))) mod n.
// Deterministic given (root, n, m, g); unpredictable before the commitment
// is fixed.
std::vector<LeafIndex> derive_samples(BytesView root, std::uint64_t n,
                                      std::size_t m, const HashFunction& g);

// As derive_samples, but stops early at the first index for which
// `accept(index)` is false — modelling the §4.2 retry attacker, which can
// abandon an attempt as soon as one derived sample falls outside its
// honestly-computed subset. Appends generated indices to `out` and returns
// the number of g invocations spent.
template <typename AcceptFn>
std::uint64_t derive_samples_early_exit(BytesView root, std::uint64_t n,
                                        std::size_t m, const HashFunction& g,
                                        AcceptFn&& accept,
                                        std::vector<LeafIndex>& out) {
  Bytes chain(root.begin(), root.end());
  std::uint64_t g_invocations = 0;
  for (std::size_t k = 0; k < m; ++k) {
    chain = g.hash(chain);
    ++g_invocations;
    const LeafIndex index{read_u64_be(chain.data()) % n};
    out.push_back(index);
    if (!accept(index)) {
      break;
    }
  }
  return g_invocations;
}

}  // namespace ugc
