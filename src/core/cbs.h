#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/cheating.h"
#include "core/engine.h"
#include "core/settings.h"
#include "core/verification.h"

namespace ugc {

// Participant endpoint of the interactive Commitment-Based Sampling scheme
// (§3.1):
//
//   1. commit()  — sweep the domain, build the Merkle tree, emit Φ(R)
//   3. respond() — answer the supervisor's sample challenge with f(x_i) and
//                  the authentication paths
//
// (steps 2 and 4 belong to the supervisor).
class CbsParticipant {
 public:
  CbsParticipant(Task task, CbsConfig config,
                 std::shared_ptr<const HonestyPolicy> policy);

  // Step 1. Idempotent.
  Commitment commit();

  // Step 3. Throws if commit() has not run or the challenge is for a
  // different task.
  ProofResponse respond(const SampleChallenge& challenge);

  // Batched Step 3 (extension; pairs with CbsSupervisor::verify_batched).
  BatchProofResponse respond_batched(const SampleChallenge& challenge);

  // The "results of interest" the supervisor actually wants.
  ScreenerReport screener_report() const;

  const ParticipantMetrics& metrics() const { return engine_.metrics(); }
  const Task& task() const { return engine_.task(); }

 private:
  CbsConfig config_;
  ParticipantEngine engine_;
};

// Supervisor endpoint of the interactive CBS scheme: receives the
// commitment, issues the random challenge (step 2), and verifies the
// response (step 4).
class CbsSupervisor {
 public:
  // `verifier` checks claimed results; pass a RecomputeVerifier for generic
  // f. `rng` drives sample selection.
  CbsSupervisor(Task task, CbsConfig config,
                std::shared_ptr<const ResultVerifier> verifier, Rng rng);

  // Step 2: record the commitment and draw the challenge. Throws if called
  // twice (the participant gets exactly one challenge — re-challenging after
  // a failed attempt would hand cheaters retries).
  SampleChallenge challenge(const Commitment& commitment);

  // Step 4: the verdict on the participant's response.
  Verdict verify(const ProofResponse& response);

  // Batched Step 4 (extension): one root reconstruction covers all samples.
  Verdict verify_batched(const BatchProofResponse& response);

  const SupervisorMetrics& metrics() const { return metrics_; }

 private:
  Task task_;
  CbsConfig config_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Rng rng_;
  std::optional<Commitment> commitment_;
  std::vector<LeafIndex> samples_;
  SupervisorMetrics metrics_;
  VerifyScratch scratch_;
};

// Runs one complete interactive CBS exchange in-process and returns the
// verdict — the quickest way to use the library (see examples/quickstart).
struct CbsRunResult {
  Verdict verdict;
  ScreenerReport report;
  ParticipantMetrics participant_metrics;
  SupervisorMetrics supervisor_metrics;
};

CbsRunResult run_cbs_exchange(const Task& task, const CbsConfig& config,
                              std::shared_ptr<const HonestyPolicy> policy,
                              std::shared_ptr<const ResultVerifier> verifier,
                              std::uint64_t supervisor_seed);

}  // namespace ugc
