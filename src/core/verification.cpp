#include "core/verification.h"

#include <algorithm>

#include "common/error.h"
#include "core/engine.h"
#include "merkle/batch_proof.h"
#include "merkle/proof.h"
#include "merkle/tree.h"

namespace ugc {

namespace {

Verdict malformed(const Task& task, std::string detail) {
  return Verdict{task.id, VerdictStatus::kMalformed, std::nullopt,
                 std::move(detail)};
}

}  // namespace

Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponse& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics) {
  const std::uint64_t n = task.domain.size();

  if (commitment.task != task.id || response.task != task.id) {
    return malformed(task, "task id mismatch");
  }
  if (commitment.leaf_count != n) {
    return malformed(task, concat("commitment covers ", commitment.leaf_count,
                                  " leaves, task has ", n));
  }
  if (response.proofs.size() != expected_samples.size()) {
    return malformed(task,
                     concat("expected ", expected_samples.size(),
                            " sample proofs, got ", response.proofs.size()));
  }

  const auto hash = make_hash(settings.tree_hash);
  const unsigned height = tree_height(n);
  const std::size_t result_size = task.f->result_size();

  for (std::size_t k = 0; k < expected_samples.size(); ++k) {
    const LeafIndex expected = expected_samples[k];
    const SampleProof& proof = response.proofs[k];

    if (proof.index != expected) {
      return malformed(task, concat("sample ", k, ": expected index ",
                                    expected.value, ", got ",
                                    proof.index.value));
    }
    if (expected.value >= n) {
      return malformed(task, concat("sample index ", expected.value,
                                    " outside domain of size ", n));
    }
    if (proof.result.size() != result_size) {
      return malformed(task,
                       concat("sample ", expected.value, ": result size ",
                              proof.result.size(), ", expected ",
                              result_size));
    }
    if (proof.siblings.size() != height) {
      return malformed(task, concat("sample ", expected.value, ": path has ",
                                    proof.siblings.size(), " siblings, tree "
                                    "height is ", height));
    }

    // Step 4.1: is the claimed f(x_i) correct?
    if (metrics != nullptr) ++metrics->results_verified;
    const std::uint64_t x = task.domain.input(expected);
    if (!verifier.verify(x, proof.result)) {
      return Verdict{task.id, VerdictStatus::kWrongResult, expected,
                     concat("claimed f(", x, ") failed verification")};
    }

    // Step 4.2: was that value committed before the samples were known?
    MerkleProof merkle;
    merkle.index = expected;
    merkle.leaf_value = ParticipantEngine::leaf_from_result(
        proof.result, settings.leaf_mode, *hash);
    merkle.siblings = proof.siblings;
    if (metrics != nullptr) ++metrics->roots_reconstructed;
    if (!verify_proof(merkle, commitment.root, *hash)) {
      return Verdict{
          task.id, VerdictStatus::kRootMismatch, expected,
          concat("reconstructed root differs from commitment for sample ",
                 expected.value)};
    }
  }

  return Verdict{task.id, VerdictStatus::kAccepted, std::nullopt,
                 "all samples verified"};
}

Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponse& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics) {
  const std::uint64_t n = task.domain.size();

  if (commitment.task != task.id || response.task != task.id) {
    return malformed(task, "task id mismatch");
  }
  if (commitment.leaf_count != n) {
    return malformed(task, concat("commitment covers ", commitment.leaf_count,
                                  " leaves, task has ", n));
  }

  // The response must cover exactly the distinct expected indices.
  std::vector<std::uint64_t> expected;
  expected.reserve(expected_samples.size());
  for (const LeafIndex index : expected_samples) {
    expected.push_back(index.value);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  if (response.results.size() != expected.size()) {
    return malformed(task,
                     concat("expected ", expected.size(),
                            " distinct samples, got ",
                            response.results.size()));
  }

  const auto hash = make_hash(settings.tree_hash);
  const std::size_t result_size = task.f->result_size();

  BatchProof batch;
  batch.padded_leaf_count = std::uint64_t{1} << tree_height(n);
  batch.siblings = response.siblings;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const auto& [index, result] = response.results[k];
    if (index.value != expected[k]) {
      return malformed(task, concat("batch sample ", k, ": expected index ",
                                    expected[k], ", got ", index.value));
    }
    if (expected[k] >= n) {
      return malformed(task, concat("sample index ", expected[k],
                                    " outside domain of size ", n));
    }
    if (result.size() != result_size) {
      return malformed(task, concat("sample ", index.value, ": result size ",
                                    result.size(), ", expected ",
                                    result_size));
    }

    // Step 4.1 per distinct sample.
    if (metrics != nullptr) ++metrics->results_verified;
    const std::uint64_t x = task.domain.input(index);
    if (!verifier.verify(x, result)) {
      return Verdict{task.id, VerdictStatus::kWrongResult, index,
                     concat("claimed f(", x, ") failed verification")};
    }
    batch.leaves.emplace_back(
        index, ParticipantEngine::leaf_from_result(result,
                                                   settings.leaf_mode, *hash));
  }

  // Step 4.2, once: one reconstruction covers every sample.
  if (metrics != nullptr) ++metrics->roots_reconstructed;
  if (!verify_batch_proof(batch, commitment.root, *hash)) {
    return Verdict{task.id, VerdictStatus::kRootMismatch, std::nullopt,
                   "reconstructed batch root differs from commitment"};
  }
  return Verdict{task.id, VerdictStatus::kAccepted, std::nullopt,
                 "all samples verified (batched)"};
}

}  // namespace ugc
