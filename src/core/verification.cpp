#include "core/verification.h"

#include <algorithm>

#include "common/error.h"
#include "merkle/geometry.h"

namespace ugc {

namespace {

Verdict malformed(const Task& task, std::string detail) {
  return Verdict{task.id, VerdictStatus::kMalformed, std::nullopt,
                 std::move(detail)};
}

// Shared Step-4 core over owning (SampleProof) and span-backed
// (SampleProofView) responses: both expose index / result / siblings, so one
// implementation keeps the verdicts byte-identical across entry points.
template <typename Proof>
Verdict verify_samples_impl(const Task& task, const TreeSettings& settings,
                            const Commitment& commitment,
                            std::span<const LeafIndex> expected_samples,
                            TaskId response_task,
                            std::span<const Proof> proofs,
                            const ResultVerifier& verifier,
                            SupervisorMetrics* metrics,
                            VerifyScratch& scratch) {
  const std::uint64_t n = task.domain.size();

  if (commitment.task != task.id || response_task != task.id) {
    return malformed(task, "task id mismatch");
  }
  if (commitment.leaf_count != n) {
    return malformed(task, concat("commitment covers ", commitment.leaf_count,
                                  " leaves, task has ", n));
  }
  if (proofs.size() != expected_samples.size()) {
    return malformed(task, concat("expected ", expected_samples.size(),
                                  " sample proofs, got ", proofs.size()));
  }

  const HashFunction& hash = scratch.hash_for(settings.tree_hash);
  const std::size_t digest_size = hash.digest_size();
  const unsigned height = tree_height(n);
  const std::size_t result_size = task.f->result_size();
  scratch.fold[0].resize(digest_size);
  scratch.fold[1].resize(digest_size);
  scratch.leaf.resize(digest_size);

  for (std::size_t k = 0; k < expected_samples.size(); ++k) {
    const LeafIndex expected = expected_samples[k];
    const Proof& proof = proofs[k];

    if (proof.index != expected) {
      return malformed(task, concat("sample ", k, ": expected index ",
                                    expected.value, ", got ",
                                    proof.index.value));
    }
    if (expected.value >= n) {
      return malformed(task, concat("sample index ", expected.value,
                                    " outside domain of size ", n));
    }
    if (proof.result.size() != result_size) {
      return malformed(task,
                       concat("sample ", expected.value, ": result size ",
                              proof.result.size(), ", expected ",
                              result_size));
    }
    if (proof.siblings.size() != height) {
      return malformed(task, concat("sample ", expected.value, ": path has ",
                                    proof.siblings.size(), " siblings, tree "
                                    "height is ", height));
    }

    // Step 4.1: is the claimed f(x_i) correct?
    if (metrics != nullptr) ++metrics->results_verified;
    const std::uint64_t x = task.domain.input(expected);
    if (!verifier.verify(x, proof.result)) {
      return Verdict{task.id, VerdictStatus::kWrongResult, expected,
                     concat("claimed f(", x, ") failed verification")};
    }

    // Step 4.2: was that value committed before the samples were known?
    // Fold the authentication path in place — the leaf value is a view (or
    // one hash_into for kHashed) and every level lands in a reusable digest
    // buffer, so a sample costs exactly its hashes.
    if (metrics != nullptr) ++metrics->roots_reconstructed;
    BytesView current;
    if (settings.leaf_mode == LeafMode::kRaw) {
      current = proof.result;
    } else {
      hash.hash_into(proof.result, scratch.leaf);
      current = scratch.leaf;
    }
    std::uint64_t position = expected.value;
    int flip = 0;
    for (const auto& sibling : proof.siblings) {
      Bytes& parent = scratch.fold[flip];
      flip ^= 1;
      if ((position & 1) == 0) {
        hash.hash_pair(current, sibling, parent);
      } else {
        hash.hash_pair(sibling, current, parent);
      }
      current = parent;
      position >>= 1;
    }
    if (!equal_bytes(current, commitment.root)) {
      return Verdict{
          task.id, VerdictStatus::kRootMismatch, expected,
          concat("reconstructed root differs from commitment for sample ",
                 expected.value)};
    }
  }

  return Verdict{task.id, VerdictStatus::kAccepted, std::nullopt,
                 "all samples verified"};
}

// Batched Step-4 core; `results[k]` destructures to (index, result) for both
// the owning pair and BatchResultView.
template <typename Results>
Verdict verify_batch_impl(const Task& task, const TreeSettings& settings,
                          const Commitment& commitment,
                          std::span<const LeafIndex> expected_samples,
                          TaskId response_task, const Results& results,
                          std::span<const BytesView> siblings,
                          const ResultVerifier& verifier,
                          SupervisorMetrics* metrics, VerifyScratch& scratch) {
  const std::uint64_t n = task.domain.size();

  if (commitment.task != task.id || response_task != task.id) {
    return malformed(task, "task id mismatch");
  }
  if (commitment.leaf_count != n) {
    return malformed(task, concat("commitment covers ", commitment.leaf_count,
                                  " leaves, task has ", n));
  }

  // The response must cover exactly the distinct expected indices.
  std::vector<std::uint64_t>& expected = scratch.expected;
  expected.clear();
  expected.reserve(expected_samples.size());
  for (const LeafIndex index : expected_samples) {
    expected.push_back(index.value);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  if (results.size() != expected.size()) {
    return malformed(task, concat("expected ", expected.size(),
                                  " distinct samples, got ", results.size()));
  }

  const HashFunction& hash = scratch.hash_for(settings.tree_hash);
  const std::size_t digest_size = hash.digest_size();
  const std::size_t result_size = task.f->result_size();

  scratch.batch.leaf_views.resize(expected.size());
  if (settings.leaf_mode == LeafMode::kHashed) {
    scratch.batch_leaves.resize(expected.size() * digest_size);
  }
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const auto& [index, result] = results[k];
    if (index.value != expected[k]) {
      return malformed(task, concat("batch sample ", k, ": expected index ",
                                    expected[k], ", got ", index.value));
    }
    if (expected[k] >= n) {
      return malformed(task, concat("sample index ", expected[k],
                                    " outside domain of size ", n));
    }
    if (result.size() != result_size) {
      return malformed(task, concat("sample ", index.value, ": result size ",
                                    result.size(), ", expected ",
                                    result_size));
    }

    // Step 4.1 per distinct sample.
    if (metrics != nullptr) ++metrics->results_verified;
    const std::uint64_t x = task.domain.input(index);
    if (!verifier.verify(x, result)) {
      return Verdict{task.id, VerdictStatus::kWrongResult, index,
                     concat("claimed f(", x, ") failed verification")};
    }
    BytesView leaf;
    if (settings.leaf_mode == LeafMode::kRaw) {
      leaf = result;
    } else {
      const std::span<std::uint8_t> slot(
          scratch.batch_leaves.data() + k * digest_size, digest_size);
      hash.hash_into(result, slot);
      leaf = slot;
    }
    scratch.batch.leaf_views[k] = BatchLeafView{index.value, leaf};
  }

  // Step 4.2, once: one reconstruction covers every sample.
  if (metrics != nullptr) ++metrics->roots_reconstructed;
  BytesView root;
  const char* reason = reconstruct_batch_root(
      std::uint64_t{1} << tree_height(n), scratch.batch.leaf_views, siblings,
      hash, scratch.batch, &root);
  if (reason != nullptr || !equal_bytes(root, commitment.root)) {
    return Verdict{task.id, VerdictStatus::kRootMismatch, std::nullopt,
                   "reconstructed batch root differs from commitment"};
  }
  return Verdict{task.id, VerdictStatus::kAccepted, std::nullopt,
                 "all samples verified (batched)"};
}

}  // namespace

const HashFunction& VerifyScratch::hash_for(HashAlgorithm algorithm) {
  const std::size_t index = static_cast<std::size_t>(algorithm);
  check(index < kHashAlgorithmCount,
        "VerifyScratch::hash_for: unknown algorithm ", index);
  std::unique_ptr<HashFunction>& slot = hashes_[index];
  if (slot == nullptr) {
    slot = make_hash(algorithm);
  }
  return *slot;
}

Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponse& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics,
                             VerifyScratch& scratch) {
  return verify_samples_impl<SampleProof>(
      task, settings, commitment, expected_samples, response.task,
      response.proofs, verifier, metrics, scratch);
}

Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponseView& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics,
                             VerifyScratch& scratch) {
  return verify_samples_impl<SampleProofView>(
      task, settings, commitment, expected_samples, response.task,
      response.proofs, verifier, metrics, scratch);
}

Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponse& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics) {
  VerifyScratch scratch;
  return verify_sample_proofs(task, settings, commitment, expected_samples,
                              response, verifier, metrics, scratch);
}

Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponse& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics,
                              VerifyScratch& scratch) {
  scratch.byte_views.resize(response.siblings.size());
  for (std::size_t i = 0; i < response.siblings.size(); ++i) {
    scratch.byte_views[i] = response.siblings[i];
  }
  return verify_batch_impl(task, settings, commitment, expected_samples,
                           response.task, response.results,
                           scratch.byte_views, verifier, metrics, scratch);
}

Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponseView& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics,
                              VerifyScratch& scratch) {
  return verify_batch_impl(task, settings, commitment, expected_samples,
                           response.task, response.results,
                           response.siblings, verifier, metrics, scratch);
}

Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponse& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics) {
  VerifyScratch scratch;
  return verify_batch_response(task, settings, commitment, expected_samples,
                               response, verifier, metrics, scratch);
}

}  // namespace ugc
