#include "core/analysis.h"

#include <cmath>

#include "common/error.h"
#include "merkle/tree.h"

namespace ugc {

namespace {

void check_probability(double p, const char* name) {
  check(p >= 0.0 && p <= 1.0, name, " must be in [0, 1], got ", p);
}

}  // namespace

double cheat_success_probability(double honesty_ratio, double guess_accuracy,
                                 std::size_t sample_count) {
  check_probability(honesty_ratio, "honesty_ratio");
  check_probability(guess_accuracy, "guess_accuracy");
  const double per_sample =
      honesty_ratio + (1.0 - honesty_ratio) * guess_accuracy;
  return std::pow(per_sample, static_cast<double>(sample_count));
}

std::optional<std::size_t> required_sample_size(double epsilon,
                                                double honesty_ratio,
                                                double guess_accuracy) {
  check(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1), got ",
        epsilon);
  check_probability(honesty_ratio, "honesty_ratio");
  check_probability(guess_accuracy, "guess_accuracy");

  const double base = honesty_ratio + (1.0 - honesty_ratio) * guess_accuracy;
  if (base >= 1.0) {
    return std::nullopt;  // cheating is undetectable by sampling
  }
  if (base <= 0.0) {
    return 1;  // any single sample exposes the cheater
  }
  const double m = std::log(epsilon) / std::log(base);
  return static_cast<std::size_t>(std::ceil(m));
}

double naive_sampling_escape_probability(double honesty_ratio,
                                         std::size_t sample_count) {
  return cheat_success_probability(honesty_ratio, 0.0, sample_count);
}

double rco_from_levels(std::size_t sample_count, unsigned tree_height,
                       unsigned subtree_height) {
  check(subtree_height <= tree_height, "rco_from_levels: subtree height ",
        subtree_height, " exceeds tree height ", tree_height);
  return static_cast<double>(sample_count) *
         std::pow(2.0, static_cast<double>(subtree_height)) /
         std::pow(2.0, static_cast<double>(tree_height));
}

double rco_from_storage(std::size_t sample_count, double stored_nodes) {
  check(stored_nodes > 0.0, "rco_from_storage: stored_nodes must be positive");
  return 2.0 * static_cast<double>(sample_count) / stored_nodes;
}

double expected_retry_attempts(double honesty_ratio,
                               std::size_t sample_count) {
  check(honesty_ratio > 0.0 && honesty_ratio <= 1.0,
        "expected_retry_attempts: honesty ratio must be in (0, 1]");
  return std::pow(1.0 / honesty_ratio, static_cast<double>(sample_count));
}

double min_sample_gen_cost(double honesty_ratio, std::size_t sample_count,
                           std::uint64_t domain_size, double cost_f) {
  check(sample_count > 0, "min_sample_gen_cost: sample count must be > 0");
  check(cost_f > 0.0, "min_sample_gen_cost: cost_f must be positive");
  // Eq. 5 rearranged: Cg >= n · Cf · r^m / m.
  const double attempts = expected_retry_attempts(honesty_ratio, sample_count);
  return static_cast<double>(domain_size) * cost_f /
         (attempts * static_cast<double>(sample_count));
}

std::uint64_t iterations_for_defense(double honesty_ratio,
                                     std::size_t sample_count,
                                     std::uint64_t domain_size, double cost_f,
                                     double cost_hash) {
  check(cost_hash > 0.0, "iterations_for_defense: cost_hash must be positive");
  const double cg =
      min_sample_gen_cost(honesty_ratio, sample_count, domain_size, cost_f);
  const double k = std::ceil(cg / cost_hash);
  return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

double honest_sample_gen_overhead(std::size_t sample_count, double cost_g,
                                  std::uint64_t domain_size, double cost_f) {
  check(domain_size > 0, "honest_sample_gen_overhead: empty domain");
  check(cost_f > 0.0, "honest_sample_gen_overhead: cost_f must be positive");
  return static_cast<double>(sample_count) * cost_g /
         (static_cast<double>(domain_size) * cost_f);
}

double upload_bytes_all_results(std::uint64_t domain_size,
                                std::size_t result_size) {
  return static_cast<double>(domain_size) *
         static_cast<double>(result_size);
}

double cbs_upload_bytes(std::uint64_t domain_size, std::size_t sample_count,
                        std::size_t result_size, std::size_t digest_size) {
  const double height = static_cast<double>(tree_height(domain_size));
  const double per_proof =
      static_cast<double>(result_size) +
      height * static_cast<double>(digest_size) + 8.0 /* sample index */;
  return static_cast<double>(digest_size) /* commitment */ +
         static_cast<double>(sample_count) * per_proof;
}

}  // namespace ugc
