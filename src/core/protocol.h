#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "core/task.h"

namespace ugc {

// Value types exchanged by the CBS / NI-CBS protocols. The wire module
// (src/wire) serializes these; in-process experiments pass them directly.

// Step 1: the participant commits to all n results via the Merkle root Φ(R).
struct Commitment {
  TaskId task;
  std::uint64_t leaf_count = 0;  // n = |D|, echoed for validation
  Bytes root;                    // Φ(R)

  friend bool operator==(const Commitment&, const Commitment&) = default;
};

// Step 2: the supervisor's sample challenge (interactive CBS only).
struct SampleChallenge {
  TaskId task;
  std::vector<LeafIndex> samples;

  friend bool operator==(const SampleChallenge&, const SampleChallenge&) =
      default;
};

// One sample's proof of honesty: the claimed result plus the authentication
// path λ1..λH from its leaf to the committed root.
struct SampleProof {
  LeafIndex index;
  Bytes result;                 // claimed f(x_i)
  std::vector<Bytes> siblings;  // sibling Φ values, bottom-up

  std::size_t payload_bytes() const {
    std::size_t total = 8 /* index */ + result.size();
    for (const Bytes& s : siblings) total += s.size();
    return total;
  }

  friend bool operator==(const SampleProof&, const SampleProof&) = default;
};

// Step 3: the participant's response to a challenge (or, for NI-CBS, to its
// self-derived samples).
struct ProofResponse {
  TaskId task;
  std::vector<SampleProof> proofs;

  std::size_t payload_bytes() const {
    std::size_t total = 8;
    for (const SampleProof& p : proofs) total += p.payload_bytes();
    return total;
  }

  friend bool operator==(const ProofResponse&, const ProofResponse&) = default;
};

// Batched Step-3 response (library extension, not in the paper): every
// distinct sampled leaf appears once, and the m authentication paths are
// merged into one deduplicated sibling stream (see merkle/batch_proof.h).
// Enabled via CbsConfig::use_batch_proofs.
struct BatchProofResponse {
  TaskId task;
  // (index, claimed result) sorted by index, duplicates removed.
  std::vector<std::pair<LeafIndex, Bytes>> results;
  // Deduplicated siblings in verification consumption order.
  std::vector<Bytes> siblings;

  std::size_t payload_bytes() const {
    std::size_t total = 8;
    for (const auto& [index, result] : results) {
      total += 8 + result.size();
    }
    for (const Bytes& sibling : siblings) {
      total += sibling.size();
    }
    return total;
  }

  friend bool operator==(const BatchProofResponse&,
                         const BatchProofResponse&) = default;
};

// ---------------------------------------------------------------------------
// Span-backed views of the proof-carrying messages — the zero-copy shape the
// supervisor's verification hot path consumes. Views reference storage owned
// elsewhere (an owning ProofResponse/BatchProofResponse, or the raw receive
// buffer plus a WireViewArena when produced by the wire layer's view
// decoders) and stay valid only while that storage lives.
// ---------------------------------------------------------------------------

struct SampleProofView {
  LeafIndex index;
  BytesView result;
  std::span<const BytesView> siblings;
};

struct ProofResponseView {
  TaskId task;
  std::span<const SampleProofView> proofs;
};

struct BatchResultView {
  LeafIndex index;
  BytesView result;
};

struct BatchProofResponseView {
  TaskId task;
  std::span<const BatchResultView> results;
  std::span<const BytesView> siblings;
};

// Participant -> supervisor: the full result vector, in domain order.
// This is the O(n) upload that double-check and naive sampling require and
// that CBS eliminates.
struct ResultsUpload {
  TaskId task;
  std::vector<Bytes> results;

  friend bool operator==(const ResultsUpload&, const ResultsUpload&) = default;
};

// The results of interest, reported through the screener channel.
struct ScreenerReport {
  TaskId task;
  std::vector<ScreenerHit> hits;

  friend bool operator==(const ScreenerReport&, const ScreenerReport&) =
      default;
};

// Step 4 outcome.
enum class VerdictStatus {
  kAccepted,      // all samples verified against the commitment
  kWrongResult,   // a claimed f(x_i) failed result verification
  kRootMismatch,  // Λ(f(x_i), λ1..λH) != committed Φ(R)
  kMalformed,     // structurally invalid response (wrong samples, sizes, ...)
  kAborted,       // protocol never completed (crash/loss); no accusation made
};

const char* to_string(VerdictStatus status);

struct Verdict {
  TaskId task;
  VerdictStatus status = VerdictStatus::kMalformed;
  // The first sample that failed, when status is kWrongResult/kRootMismatch.
  std::optional<LeafIndex> failed_sample;
  std::string detail;

  bool accepted() const { return status == VerdictStatus::kAccepted; }

  friend bool operator==(const Verdict&, const Verdict&) = default;
};

// The complete non-interactive proof (§4): commitment plus the response to
// the root-derived samples, shipped in one message.
struct NiCbsProof {
  Commitment commitment;
  ProofResponse response;

  std::size_t payload_bytes() const {
    return commitment.root.size() + 8 + response.payload_bytes();
  }

  friend bool operator==(const NiCbsProof&, const NiCbsProof&) = default;
};

// ---------------------------------------------------------------------------
// Pipelined (epoched) verification: the long-running-task protocol cuts the
// domain into epochs (Domain::split) and runs commit/challenge/respond per
// epoch while the computation continues, so a cheater is accused
// mid-computation. Epoch indices are 0-based; sample indices inside epoch
// messages are LOCAL to that epoch's subdomain.
// ---------------------------------------------------------------------------

// Participant -> supervisor: the Merkle commitment over epoch `epoch`'s
// subdomain, streamed as soon as that slice of the computation completes.
struct EpochCommitment {
  TaskId task;
  std::uint64_t epoch = 0;
  std::uint64_t epoch_count = 0;  // echoed for validation
  Commitment commitment;          // commitment.task == task; root over epoch

  friend bool operator==(const EpochCommitment&, const EpochCommitment&) =
      default;
};

// Supervisor -> participant: sample challenge against one epoch commitment.
struct EpochChallenge {
  TaskId task;
  std::uint64_t epoch = 0;
  std::vector<LeafIndex> samples;  // local to the epoch subdomain

  friend bool operator==(const EpochChallenge&, const EpochChallenge&) =
      default;
};

// Participant -> supervisor: proofs for one epoch challenge.
struct EpochProofResponse {
  TaskId task;
  std::uint64_t epoch = 0;
  ProofResponse response;  // response.task == task

  friend bool operator==(const EpochProofResponse&, const EpochProofResponse&) =
      default;
};

// Supervisor -> participant: epoch `epoch` verified; the participant may
// retire its tree and advance the in-flight window. The terminal verdict
// still arrives as a plain Verdict once the final epoch clears.
struct EpochAck {
  TaskId task;
  std::uint64_t epoch = 0;

  friend bool operator==(const EpochAck&, const EpochAck&) = default;
};

}  // namespace ugc
