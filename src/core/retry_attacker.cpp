#include "core/retry_attacker.h"

#include <unordered_set>

#include "common/error.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/sampling.h"
#include "crypto/iterated_hash.h"
#include "merkle/tree.h"

namespace ugc {

NiCbsRetryAttacker::NiCbsRetryAttacker(Task task, NiCbsConfig config,
                                       RetryAttackConfig attack)
    : task_(std::move(task)), config_(config), attack_(attack) {
  check(attack_.honesty_ratio > 0.0 && attack_.honesty_ratio <= 1.0,
        "NiCbsRetryAttacker: honesty ratio must be in (0, 1] — an attacker "
        "that computed nothing cannot ever pass");
}

RetryAttackOutcome NiCbsRetryAttacker::run() {
  const std::uint64_t n = task_.domain.size();
  const auto hash = make_hash(config_.tree.tree_hash);
  const auto g =
      make_iterated_hash(config_.sample_hash, config_.sample_hash_iterations);

  RetryAttackOutcome outcome;

  // Step 0: do the honest part of the work and fill the rest with guesses
  // (q = 0: guesses are junk, which is what a rational retry attacker does —
  // the retries, not lucky guesses, are its weapon).
  const SemiHonestCheater policy(
      {attack_.honesty_ratio, /*guess_accuracy=*/0.0, attack_.seed});

  std::vector<Bytes> results(n);
  std::vector<Bytes> leaves(n);
  std::vector<std::uint64_t> fake_indices;
  std::unordered_set<std::uint64_t> honest_set;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto decision = policy.decide(LeafIndex{i}, task_);
    if (decision.honest) {
      ++outcome.honest_evaluations;
      honest_set.insert(i);
    } else {
      fake_indices.push_back(i);
    }
    results[i] = decision.value;
    leaves[i] = ParticipantEngine::leaf_from_result(
        results[i], config_.tree.leaf_mode, *hash);
  }

  MerkleTree tree = MerkleTree::build(leaves, *hash);
  Rng reroll_rng(attack_.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  const auto in_honest_set = [&honest_set](LeafIndex i) {
    return honest_set.contains(i.value);
  };

  std::vector<LeafIndex> samples;
  for (;;) {
    ++outcome.attempts;
    outcome.g_invocations_full += config_.sample_count;

    // Step 2: derive this attempt's samples from the current root.
    samples.clear();
    if (attack_.early_exit) {
      outcome.g_invocations += derive_samples_early_exit(
          tree.root(), n, config_.sample_count, *g, in_honest_set, samples);
    } else {
      samples = derive_samples(tree.root(), n, config_.sample_count, *g);
      outcome.g_invocations += config_.sample_count;
    }

    const bool all_honest =
        samples.size() == config_.sample_count &&
        std::all_of(samples.begin(), samples.end(), in_honest_set);
    if (all_honest) {
      outcome.success = true;
      break;
    }
    if (fake_indices.empty()) {
      // Degenerate: everything is honest yet a sample "missed" — impossible;
      // guard against infinite loops all the same.
      break;
    }
    if (attack_.max_attempts != 0 && outcome.attempts >= attack_.max_attempts) {
      break;
    }

    // Step 3: re-randomize one guessed leaf and update the O(log n) path.
    const std::uint64_t victim =
        fake_indices[reroll_rng.uniform(fake_indices.size())];
    results[victim] = reroll_rng.bytes(task_.f->result_size());
    tree.update_leaf(LeafIndex{victim},
                     ParticipantEngine::leaf_from_result(
                         results[victim], config_.tree.leaf_mode, *hash),
                     *hash);
  }

  // Assemble the forged proof (valid only on success, but returned either
  // way so callers can inspect the final state).
  outcome.proof.commitment = Commitment{task_.id, n, tree.root()};
  outcome.proof.response.task = task_.id;
  if (outcome.success) {
    for (const LeafIndex index : samples) {
      MerkleProof merkle = tree.prove(index);
      SampleProof proof;
      proof.index = index;
      proof.result = results[index.value];
      proof.siblings = std::move(merkle.siblings);
      outcome.proof.response.proofs.push_back(std::move(proof));
    }
  }
  return outcome;
}

}  // namespace ugc
