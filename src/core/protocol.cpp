#include "core/protocol.h"

namespace ugc {

const char* to_string(VerdictStatus status) {
  switch (status) {
    case VerdictStatus::kAccepted:
      return "accepted";
    case VerdictStatus::kWrongResult:
      return "wrong-result";
    case VerdictStatus::kRootMismatch:
      return "root-mismatch";
    case VerdictStatus::kMalformed:
      return "malformed";
    case VerdictStatus::kAborted:
      return "aborted";
  }
  return "unknown";
}

}  // namespace ugc
