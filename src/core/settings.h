#pragma once

#include <cstdint>

#include "crypto/hash_function.h"

namespace ugc {

// How result bytes are placed on Merkle leaves.
//
// kRaw is the paper's Eq. 1 (Φ(L_i) = f(x_i) verbatim). kHashed stores
// Φ(L_i) = hash(f(x_i)) instead, which keeps authentication paths
// digest-sized when results are large; the proof still carries the raw
// result, and the verifier re-derives the leaf. The two modes are
// benchmarked against each other (see bench_ablation_leaf_mode).
enum class LeafMode {
  kRaw,
  kHashed,
};

// Parameters the participant and supervisor must agree on to build /
// reconstruct the same commitment tree.
struct TreeSettings {
  HashAlgorithm tree_hash = HashAlgorithm::kSha256;
  LeafMode leaf_mode = LeafMode::kRaw;
  // The §3.3 tradeoff: store only nodes at height >= this value (ℓ).
  // 0 stores the full tree.
  unsigned storage_subtree_height = 0;

  friend bool operator==(const TreeSettings&, const TreeSettings&) = default;
};

// Interactive CBS protocol parameters (§3.1).
struct CbsConfig {
  TreeSettings tree;
  // Number of samples m the supervisor challenges.
  std::size_t sample_count = 33;
  // The paper draws samples independently and uniformly (with replacement);
  // without-replacement is provided as a variant.
  bool sample_with_replacement = true;
  // Extension: merge the m authentication paths into one batch proof
  // (merkle/batch_proof.h), deduplicating shared siblings. Off by default —
  // the paper's protocol ships independent paths.
  bool use_batch_proofs = false;

  friend bool operator==(const CbsConfig&, const CbsConfig&) = default;
};

// Non-interactive CBS parameters (§4).
struct NiCbsConfig {
  TreeSettings tree;
  // §4.2 defense 1: a larger m (the paper suggests 128) makes the retry
  // attack need ~1/r^m attempts.
  std::size_t sample_count = 128;
  // §4.2 defense 2: g = base^iterations; raising iterations makes every
  // retry attempt cost m·Cg (Eq. 5).
  HashAlgorithm sample_hash = HashAlgorithm::kMd5;
  std::uint64_t sample_hash_iterations = 1;

  friend bool operator==(const NiCbsConfig&, const NiCbsConfig&) = default;
};

}  // namespace ugc
