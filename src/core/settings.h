#pragma once

#include <cstdint>

#include "crypto/hash_function.h"

namespace ugc {

// How result bytes are placed on Merkle leaves.
//
// kRaw is the paper's Eq. 1 (Φ(L_i) = f(x_i) verbatim). kHashed stores
// Φ(L_i) = hash(f(x_i)) instead, which keeps authentication paths
// digest-sized when results are large; the proof still carries the raw
// result, and the verifier re-derives the leaf. The two modes are
// benchmarked against each other (see bench_ablation_leaf_mode).
enum class LeafMode {
  kRaw,
  kHashed,
};

const char* to_string(LeafMode mode);

// Parameters the participant and supervisor must agree on to build /
// reconstruct the same commitment tree.
struct TreeSettings {
  HashAlgorithm tree_hash = HashAlgorithm::kSha256;
  LeafMode leaf_mode = LeafMode::kRaw;
  // The §3.3 tradeoff: store only nodes at height >= this value (ℓ).
  // 0 stores the full tree.
  unsigned storage_subtree_height = 0;

  friend bool operator==(const TreeSettings&, const TreeSettings&) = default;
};

// Parameters of Wald's Sequential Probability Ratio Test (core/sequential.h).
// Lives here (not in sequential.h) because the grid ships it inside
// CbsConfig, which participant and supervisor must agree on.
struct SprtConfig {
  // Pass probability of a sample under each hypothesis. Requires
  // 0 <= p_cheater < p_honest <= 1.
  double pass_prob_honest = 1.0;
  double pass_prob_cheater = 0.5;
  // P(reject | honest) and P(accept | cheater) targets (Wald bounds).
  double false_reject = 1e-4;
  double false_accept = 1e-4;
  // Hard cap; an undecided test at the cap resolves conservatively to
  // kReject (the participant can be re-audited).
  std::size_t max_samples = 100'000;

  friend bool operator==(const SprtConfig&, const SprtConfig&) = default;
};

// Pipelined (epoched) verification parameters. A long-running task is cut
// into `epochs` contiguous subdomains (Domain::split); the participant
// commits each epoch as it completes and the supervisor samples it
// immediately, so a cheater is accused mid-computation and the wasted work
// is bounded by O(one epoch) instead of the whole domain. `epochs <= 1`
// keeps the classic one-shot protocol.
struct PipelineConfig {
  // Number of epochs the domain is split into. 1 = one-shot (disabled).
  std::uint64_t epochs = 1;
  // Samples the supervisor challenges per epoch commitment.
  std::size_t samples_per_epoch = 8;
  // How many epochs the participant may compute ahead of the supervisor's
  // acknowledgement (1 = strict lock-step).
  std::size_t max_inflight = 1;
  // Rolling-window SPRT: evidence accumulates over the last `window_epochs`
  // epochs' samples, so a cheater who defects late is still judged on
  // recent behavior rather than diluted by an honest prefix.
  std::size_t window_epochs = 4;

  bool enabled() const { return epochs > 1; }

  friend bool operator==(const PipelineConfig&, const PipelineConfig&) =
      default;
};

// Interactive CBS protocol parameters (§3.1).
struct CbsConfig {
  TreeSettings tree;
  // Number of samples m the supervisor challenges.
  std::size_t sample_count = 33;
  // The paper draws samples independently and uniformly (with replacement);
  // without-replacement is provided as a variant.
  bool sample_with_replacement = true;
  // Extension: merge the m authentication paths into one batch proof
  // (merkle/batch_proof.h), deduplicating shared siblings. Off by default —
  // the paper's protocol ships independent paths.
  bool use_batch_proofs = false;
  // Extension: adaptive sequential sampling. The supervisor issues
  // single-sample challenges one at a time and stops per the SPRT instead
  // of drawing a fixed m. Takes precedence over use_batch_proofs (batching
  // a single sample is pointless).
  bool use_sprt = false;
  SprtConfig sprt;

  friend bool operator==(const CbsConfig&, const CbsConfig&) = default;
};

// Non-interactive CBS parameters (§4).
struct NiCbsConfig {
  TreeSettings tree;
  // §4.2 defense 1: a larger m (the paper suggests 128) makes the retry
  // attack need ~1/r^m attempts.
  std::size_t sample_count = 128;
  // §4.2 defense 2: g = base^iterations; raising iterations makes every
  // retry attempt cost m·Cg (Eq. 5).
  HashAlgorithm sample_hash = HashAlgorithm::kMd5;
  std::uint64_t sample_hash_iterations = 1;

  friend bool operator==(const NiCbsConfig&, const NiCbsConfig&) = default;
};

}  // namespace ugc
