#pragma once

#include <cstdint>

#include "crypto/hash_function.h"

namespace ugc {

// How result bytes are placed on Merkle leaves.
//
// kRaw is the paper's Eq. 1 (Φ(L_i) = f(x_i) verbatim). kHashed stores
// Φ(L_i) = hash(f(x_i)) instead, which keeps authentication paths
// digest-sized when results are large; the proof still carries the raw
// result, and the verifier re-derives the leaf. The two modes are
// benchmarked against each other (see bench_ablation_leaf_mode).
enum class LeafMode {
  kRaw,
  kHashed,
};

const char* to_string(LeafMode mode);

// Parameters the participant and supervisor must agree on to build /
// reconstruct the same commitment tree.
struct TreeSettings {
  HashAlgorithm tree_hash = HashAlgorithm::kSha256;
  LeafMode leaf_mode = LeafMode::kRaw;
  // The §3.3 tradeoff: store only nodes at height >= this value (ℓ).
  // 0 stores the full tree.
  unsigned storage_subtree_height = 0;

  friend bool operator==(const TreeSettings&, const TreeSettings&) = default;
};

// Parameters of Wald's Sequential Probability Ratio Test (core/sequential.h).
// Lives here (not in sequential.h) because the grid ships it inside
// CbsConfig, which participant and supervisor must agree on.
struct SprtConfig {
  // Pass probability of a sample under each hypothesis. Requires
  // 0 <= p_cheater < p_honest <= 1.
  double pass_prob_honest = 1.0;
  double pass_prob_cheater = 0.5;
  // P(reject | honest) and P(accept | cheater) targets (Wald bounds).
  double false_reject = 1e-4;
  double false_accept = 1e-4;
  // Hard cap; an undecided test at the cap resolves conservatively to
  // kReject (the participant can be re-audited).
  std::size_t max_samples = 100'000;

  friend bool operator==(const SprtConfig&, const SprtConfig&) = default;
};

// Interactive CBS protocol parameters (§3.1).
struct CbsConfig {
  TreeSettings tree;
  // Number of samples m the supervisor challenges.
  std::size_t sample_count = 33;
  // The paper draws samples independently and uniformly (with replacement);
  // without-replacement is provided as a variant.
  bool sample_with_replacement = true;
  // Extension: merge the m authentication paths into one batch proof
  // (merkle/batch_proof.h), deduplicating shared siblings. Off by default —
  // the paper's protocol ships independent paths.
  bool use_batch_proofs = false;
  // Extension: adaptive sequential sampling. The supervisor issues
  // single-sample challenges one at a time and stops per the SPRT instead
  // of drawing a fixed m. Takes precedence over use_batch_proofs (batching
  // a single sample is pointless).
  bool use_sprt = false;
  SprtConfig sprt;

  friend bool operator==(const CbsConfig&, const CbsConfig&) = default;
};

// Non-interactive CBS parameters (§4).
struct NiCbsConfig {
  TreeSettings tree;
  // §4.2 defense 1: a larger m (the paper suggests 128) makes the retry
  // attack need ~1/r^m attempts.
  std::size_t sample_count = 128;
  // §4.2 defense 2: g = base^iterations; raising iterations makes every
  // retry attempt cost m·Cg (Eq. 5).
  HashAlgorithm sample_hash = HashAlgorithm::kMd5;
  std::uint64_t sample_hash_iterations = 1;

  friend bool operator==(const NiCbsConfig&, const NiCbsConfig&) = default;
};

}  // namespace ugc
