#include "core/cheating.h"

#include <utility>

#include "common/error.h"
#include "common/rng.h"

namespace ugc {

HonestyPolicy::LeafDecision HonestPolicy::decide(LeafIndex i,
                                                 const Task& task) const {
  return {task.f->evaluate(task.domain.input(i)), true};
}

SemiHonestCheater::SemiHonestCheater(Params params) : params_(params) {
  check(params_.honesty_ratio >= 0.0 && params_.honesty_ratio <= 1.0,
        "SemiHonestCheater: honesty_ratio must be in [0, 1]");
  check(params_.guess_accuracy >= 0.0 && params_.guess_accuracy <= 1.0,
        "SemiHonestCheater: guess_accuracy must be in [0, 1]");
}

double SemiHonestCheater::index_unit(LeafIndex i, std::uint64_t stream) const {
  // One splitmix-style draw keyed by (seed, stream, index): deterministic,
  // stateless, and independent across streams.
  Rng rng(params_.seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
          (i.value * 0xd1342543de82ef95ULL));
  return rng.unit_real();
}

bool SemiHonestCheater::computes_honestly(LeafIndex i) const {
  return index_unit(i, 1) < params_.honesty_ratio;
}

HonestyPolicy::LeafDecision SemiHonestCheater::decide(LeafIndex i,
                                                      const Task& task) const {
  if (computes_honestly(i)) {
    return {task.f->evaluate(task.domain.input(i)), true};
  }
  if (index_unit(i, 2) < params_.guess_accuracy) {
    // A "lucky guess": the committed value happens to be correct. The
    // simulation consults f to produce it, but the cheater is not billed —
    // the paper's q models exactly this event.
    return {task.f->evaluate(task.domain.input(i)), false};
  }
  // An unlucky guess: deterministic junk of the right width, keyed by the
  // index so that re-asking for the same leaf returns the same bytes.
  Rng rng(params_.seed ^ (3 * 0x9e3779b97f4a7c15ULL) ^
          (i.value * 0xd1342543de82ef95ULL));
  return {rng.bytes(task.f->result_size()), false};
}

std::string SemiHonestCheater::name() const {
  return concat("semi-honest(r=", params_.honesty_ratio,
                ", q=", params_.guess_accuracy, ")");
}

AdaptiveCheater::AdaptiveCheater(Params params)
    : params_(params),
      inner_({params.honesty_ratio, params.guess_accuracy, params.seed}) {}

bool AdaptiveCheater::active() const {
  return survived_.load(std::memory_order_relaxed) >= params_.activate_after;
}

std::uint64_t AdaptiveCheater::audits_survived() const {
  return survived_.load(std::memory_order_relaxed);
}

void AdaptiveCheater::observe_verdict(bool accepted) const {
  if (accepted) {
    survived_.fetch_add(1, std::memory_order_relaxed);
  }
}

HonestyPolicy::LeafDecision AdaptiveCheater::decide(LeafIndex i,
                                                    const Task& task) const {
  if (!active()) {
    return {task.f->evaluate(task.domain.input(i)), true};
  }
  return inner_.decide(i, task);
}

bool AdaptiveCheater::computes_honestly(LeafIndex i) const {
  return !active() || inner_.computes_honestly(i);
}

std::string AdaptiveCheater::name() const {
  return concat("adaptive(after=", params_.activate_after,
                ", r=", params_.honesty_ratio, ")");
}

ColludingCheater::ColludingCheater(std::vector<std::uint64_t> leaked,
                                   std::uint64_t seed)
    : leaked_(leaked.begin(), leaked.end()), seed_(seed) {}

bool ColludingCheater::computes_honestly(LeafIndex i) const {
  return leaked_.contains(i.value);
}

HonestyPolicy::LeafDecision ColludingCheater::decide(LeafIndex i,
                                                     const Task& task) const {
  if (computes_honestly(i)) {
    return {task.f->evaluate(task.domain.input(i)), true};
  }
  // Deterministic junk keyed by the index (same shape as SemiHonestCheater's
  // unlucky guess) so re-asking for a leaf returns the same bytes.
  Rng rng(seed_ ^ (5 * 0x9e3779b97f4a7c15ULL) ^
          (i.value * 0xd1342543de82ef95ULL));
  return {rng.bytes(task.f->result_size()), false};
}

std::string ColludingCheater::name() const {
  return concat("colluding(k=", leaked_.size(), ")");
}

DefectorCheater::DefectorCheater(Params params) : params_(params) {
  check(params_.guess_accuracy >= 0.0 && params_.guess_accuracy <= 1.0,
        "DefectorCheater: guess_accuracy must be in [0, 1]");
}

bool DefectorCheater::computes_honestly(LeafIndex i) const {
  return i.value < params_.defect_from;
}

HonestyPolicy::LeafDecision DefectorCheater::decide(LeafIndex i,
                                                    const Task& task) const {
  const std::uint64_t x = task.domain.input(i);
  if (x < params_.defect_from) {
    return {task.f->evaluate(x), true};
  }
  // Same stateless per-input draws as SemiHonestCheater, keyed by the
  // absolute input so epoch sub-tasks and the whole task agree.
  Rng lucky(params_.seed ^ (7 * 0x9e3779b97f4a7c15ULL) ^
            (x * 0xd1342543de82ef95ULL));
  if (lucky.unit_real() < params_.guess_accuracy) {
    return {task.f->evaluate(x), false};  // the lucky guess (paper's q)
  }
  Rng junk(params_.seed ^ (11 * 0x9e3779b97f4a7c15ULL) ^
           (x * 0xd1342543de82ef95ULL));
  return {junk.bytes(task.f->result_size()), false};
}

std::string DefectorCheater::name() const {
  return concat("defector(from=", params_.defect_from,
                ", q=", params_.guess_accuracy, ")");
}

std::shared_ptr<HonestyPolicy> make_honest_policy() {
  return std::make_shared<HonestPolicy>();
}

std::shared_ptr<HonestyPolicy> make_semi_honest_cheater(
    SemiHonestCheater::Params params) {
  return std::make_shared<SemiHonestCheater>(params);
}

std::shared_ptr<AdaptiveCheater> make_adaptive_cheater(
    AdaptiveCheater::Params params) {
  return std::make_shared<AdaptiveCheater>(params);
}

std::shared_ptr<HonestyPolicy> make_colluding_cheater(
    std::vector<std::uint64_t> leaked, std::uint64_t seed) {
  return std::make_shared<ColludingCheater>(std::move(leaked), seed);
}

std::shared_ptr<HonestyPolicy> make_defector_cheater(
    DefectorCheater::Params params) {
  return std::make_shared<DefectorCheater>(params);
}

const char* to_string(ScreenerConduct conduct) {
  switch (conduct) {
    case ScreenerConduct::kFaithful:
      return "faithful";
    case ScreenerConduct::kSuppress:
      return "suppress";
    case ScreenerConduct::kFabricate:
      return "fabricate";
  }
  return "unknown";
}

}  // namespace ugc
