#include "core/cbs.h"

#include "common/error.h"
#include "core/sampling.h"

namespace ugc {

CbsParticipant::CbsParticipant(Task task, CbsConfig config,
                               std::shared_ptr<const HonestyPolicy> policy)
    : config_(config),
      engine_(std::move(task), config.tree, std::move(policy)) {}

Commitment CbsParticipant::commit() {
  return engine_.commit();
}

ProofResponse CbsParticipant::respond(const SampleChallenge& challenge) {
  check(challenge.task == engine_.task().id,
        "CbsParticipant::respond: challenge is for task ",
        challenge.task.value, ", not ", engine_.task().id.value);
  ProofResponse response;
  response.task = engine_.task().id;
  response.proofs = engine_.prove(challenge.samples);
  return response;
}

BatchProofResponse CbsParticipant::respond_batched(
    const SampleChallenge& challenge) {
  check(challenge.task == engine_.task().id,
        "CbsParticipant::respond_batched: challenge is for task ",
        challenge.task.value, ", not ", engine_.task().id.value);
  return engine_.prove_batch(challenge.samples);
}

ScreenerReport CbsParticipant::screener_report() const {
  return ScreenerReport{engine_.task().id, engine_.hits()};
}

CbsSupervisor::CbsSupervisor(Task task, CbsConfig config,
                             std::shared_ptr<const ResultVerifier> verifier,
                             Rng rng)
    : task_(std::move(task)),
      config_(config),
      verifier_(std::move(verifier)),
      rng_(rng) {
  check(verifier_ != nullptr, "CbsSupervisor: result verifier required");
  check(config_.sample_count >= 1, "CbsSupervisor: sample_count must be >= 1");
}

SampleChallenge CbsSupervisor::challenge(const Commitment& commitment) {
  check(!commitment_.has_value(),
        "CbsSupervisor::challenge: a commitment was already challenged");
  commitment_ = commitment;

  const std::uint64_t n = task_.domain.size();
  samples_ =
      config_.sample_with_replacement
          ? sample_with_replacement(rng_, n, config_.sample_count)
          : sample_without_replacement(
                rng_, n, std::min<std::size_t>(config_.sample_count, n));
  return SampleChallenge{task_.id, samples_};
}

Verdict CbsSupervisor::verify(const ProofResponse& response) {
  check(commitment_.has_value(),
        "CbsSupervisor::verify: no commitment received yet");
  return verify_sample_proofs(task_, config_.tree, *commitment_, samples_,
                              response, *verifier_, &metrics_, scratch_);
}

Verdict CbsSupervisor::verify_batched(const BatchProofResponse& response) {
  check(commitment_.has_value(),
        "CbsSupervisor::verify_batched: no commitment received yet");
  return verify_batch_response(task_, config_.tree, *commitment_, samples_,
                               response, *verifier_, &metrics_, scratch_);
}

CbsRunResult run_cbs_exchange(const Task& task, const CbsConfig& config,
                              std::shared_ptr<const HonestyPolicy> policy,
                              std::shared_ptr<const ResultVerifier> verifier,
                              std::uint64_t supervisor_seed) {
  CbsParticipant participant(task, config, std::move(policy));
  CbsSupervisor supervisor(task, config, std::move(verifier),
                           Rng(supervisor_seed));

  const Commitment commitment = participant.commit();
  const SampleChallenge challenge = supervisor.challenge(commitment);
  const Verdict verdict =
      config.use_batch_proofs
          ? supervisor.verify_batched(participant.respond_batched(challenge))
          : supervisor.verify(participant.respond(challenge));

  return CbsRunResult{verdict, participant.screener_report(),
                      participant.metrics(), supervisor.metrics()};
}

}  // namespace ugc
