#include "core/ringer.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"
#include "common/hex.h"
#include "common/rng.h"
#include "core/sampling.h"

namespace ugc {

RingerSupervisor::RingerSupervisor(Task task, RingerConfig config)
    : task_(std::move(task)) {
  check(config.ringer_count >= 1, "RingerSupervisor: need at least 1 ringer");
  check(config.ringer_count <= task_.domain.size(),
        "RingerSupervisor: more ringers (", config.ringer_count,
        ") than inputs (", task_.domain.size(), ")");

  Rng rng(config.seed);
  const std::vector<LeafIndex> picks = sample_without_replacement(
      rng, task_.domain.size(), config.ringer_count);
  inputs_.reserve(picks.size());
  images_.reserve(picks.size());
  for (const LeafIndex i : picks) {
    const std::uint64_t x = task_.domain.input(i);
    inputs_.push_back(x);
    images_.push_back(task_.f->evaluate(x));
  }
}

RingerVerdict RingerSupervisor::verify(const RingerReport& report) const {
  RingerVerdict verdict;
  verdict.ringers_expected = inputs_.size();
  if (report.task != task_.id) {
    return verdict;  // rejected: wrong task
  }
  const std::unordered_set<std::uint64_t> found(report.found_inputs.begin(),
                                                report.found_inputs.end());
  for (const std::uint64_t x : inputs_) {
    if (found.contains(x)) {
      ++verdict.ringers_found;
    }
  }
  verdict.accepted = verdict.ringers_found == verdict.ringers_expected;
  return verdict;
}

RingerParticipant::RingerParticipant(
    Task task, std::vector<Bytes> planted_images,
    std::shared_ptr<const HonestyPolicy> policy)
    : task_(std::move(task)),
      images_(std::move(planted_images)),
      policy_(std::move(policy)) {
  check(policy_ != nullptr, "RingerParticipant: honesty policy required");
}

RingerReport RingerParticipant::scan() {
  // Index the planted images for O(1) membership tests (hex keys keep the
  // set simple; values are small).
  std::unordered_set<std::string> image_set;
  image_set.reserve(images_.size());
  for (const Bytes& image : images_) {
    image_set.insert(to_hex(image));
  }

  RingerReport report;
  report.task = task_.id;
  const std::uint64_t n = task_.domain.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto decision = policy_->decide(LeafIndex{i}, task_);
    if (decision.honest) {
      ++honest_evaluations_;
    }
    const std::uint64_t x = task_.domain.input(LeafIndex{i});
    if (image_set.contains(to_hex(decision.value))) {
      report.found_inputs.push_back(x);
    }
    if (auto hit = task_.screener->screen(x, decision.value)) {
      hits_.push_back(ScreenerHit{x, std::move(*hit)});
    }
  }
  return report;
}

}  // namespace ugc
