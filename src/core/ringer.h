#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "core/cheating.h"
#include "core/task.h"

namespace ugc {

// The Golle–Mironov ringer scheme [8], implemented as the paper's related-
// work baseline.
//
// The supervisor secretly picks d inputs ("ringers") from the participant's
// domain, precomputes their images f(x), and hands the participant the
// *images only* alongside the task. Because f is one-way, the participant
// can locate the ringers only by actually evaluating f across the domain; a
// cheater that skipped a fraction (1-r) of D misses each ringer with
// probability (1-r) and survives with probability r^d.
//
// Unlike CBS this works only for one-way f — the restriction that motivates
// the paper's generic scheme.
struct RingerConfig {
  std::size_t ringer_count = 10;  // d
  std::uint64_t seed = 0;

  friend bool operator==(const RingerConfig&, const RingerConfig&) = default;
};

struct RingerReport {
  TaskId task;
  // Inputs whose image matched a planted ringer image.
  std::vector<std::uint64_t> found_inputs;

  friend bool operator==(const RingerReport&, const RingerReport&) = default;
};

struct RingerVerdict {
  bool accepted = false;
  std::size_t ringers_found = 0;
  std::size_t ringers_expected = 0;
};

class RingerSupervisor {
 public:
  RingerSupervisor(Task task, RingerConfig config);

  // The planted images shipped with the task assignment (inputs stay secret).
  const std::vector<Bytes>& planted_images() const { return images_; }

  // Accepts iff every planted ringer input was reported.
  RingerVerdict verify(const RingerReport& report) const;

  // Supervisor-side precomputation cost (d evaluations of f).
  std::uint64_t precompute_evaluations() const { return inputs_.size(); }

 private:
  Task task_;
  std::vector<std::uint64_t> inputs_;  // secret ringer inputs
  std::vector<Bytes> images_;          // f of each, in matching order
};

class RingerParticipant {
 public:
  RingerParticipant(Task task, std::vector<Bytes> planted_images,
                    std::shared_ptr<const HonestyPolicy> policy);

  // Sweeps the domain per the honesty policy and reports every input whose
  // (claimed) value matches a planted image.
  RingerReport scan();

  // f evaluations genuinely performed (= r·n in expectation for a cheater).
  std::uint64_t honest_evaluations() const { return honest_evaluations_; }

  // Screener hits gathered during the sweep (populated by scan()).
  const std::vector<ScreenerHit>& hits() const { return hits_; }

 private:
  Task task_;
  std::vector<Bytes> images_;
  std::shared_ptr<const HonestyPolicy> policy_;
  std::uint64_t honest_evaluations_ = 0;
  std::vector<ScreenerHit> hits_;
};

}  // namespace ugc
