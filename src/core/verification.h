#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "core/protocol.h"
#include "core/settings.h"
#include "core/task.h"

namespace ugc {

// Supervisor-side cost counters.
struct SupervisorMetrics {
  // Samples whose claimed result went through the ResultVerifier (for
  // RecomputeVerifier this is one f evaluation each).
  std::uint64_t results_verified = 0;
  // Root reconstructions (Λ evaluations, each O(log n) hashes).
  std::uint64_t roots_reconstructed = 0;
};

// The paper's Step 4, shared by interactive CBS and NI-CBS supervisors:
// for every expected sample, (1) check the claimed f(x_i) via `verifier`,
// then (2) rebuild the root from the authentication path and compare with
// the commitment. Any failure yields a non-accepted verdict naming the
// first offending sample.
//
// `expected_samples` are the indices the supervisor chose (CBS) or derived
// from the root (NI-CBS); the response must answer exactly these, in order.
Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponse& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics = nullptr);

// Batched-variant of Step 4 (extension): `response` must cover exactly the
// distinct indices of `expected_samples`, each claimed result must verify,
// and the single reconstructed batch root must equal the commitment.
Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponse& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics = nullptr);

}  // namespace ugc
