#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "core/protocol.h"
#include "core/settings.h"
#include "core/task.h"
#include "merkle/batch_proof.h"

namespace ugc {

// Supervisor-side cost counters.
struct SupervisorMetrics {
  // Samples whose claimed result went through the ResultVerifier (for
  // RecomputeVerifier this is one f evaluation each).
  std::uint64_t results_verified = 0;
  // Root reconstructions (Λ evaluations, each O(log n) hashes).
  std::uint64_t roots_reconstructed = 0;
};

// Reusable scratch for the supervisor's allocation-free verification path.
// One instance per supervisor session (never shared across threads): after
// the first verification every buffer has settled at capacity and checking a
// proof performs zero heap allocations — the path folds through caller-owned
// digest buffers and flat frontiers instead of per-level vector<Bytes>
// temporaries. Contents are an implementation detail; construct once and
// pass by reference.
struct VerifyScratch {
  // Cached hash instance per algorithm, so hot loops skip make_hash().
  const HashFunction& hash_for(HashAlgorithm algorithm);

  // Path-fold ping-pong digest buffers and the kHashed leaf target.
  Bytes fold[2];
  Bytes leaf;
  // Batched path: flat kHashed leaf digests plus the frontier scratch.
  Bytes batch_leaves;
  std::vector<std::uint64_t> expected;
  BatchVerifyScratch batch;
  // The owning-struct adapters stage sibling views here.
  std::vector<BytesView> byte_views;

 private:
  std::unique_ptr<HashFunction> hashes_[kHashAlgorithmCount];
};

// The paper's Step 4, shared by interactive CBS and NI-CBS supervisors:
// for every expected sample, (1) check the claimed f(x_i) via `verifier`,
// then (2) rebuild the root from the authentication path and compare with
// the commitment. Any failure yields a non-accepted verdict naming the
// first offending sample.
//
// `expected_samples` are the indices the supervisor chose (CBS) or derived
// from the root (NI-CBS); the response must answer exactly these, in order.
Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponse& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics = nullptr);

// Batched-variant of Step 4 (extension): `response` must cover exactly the
// distinct indices of `expected_samples`, each claimed result must verify,
// and the single reconstructed batch root must equal the commitment.
Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponse& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics = nullptr);

// ---------------------------------------------------------------------------
// Allocation-free variants. Verdicts are byte-identical to the functions
// above; `scratch` owns every temporary, so per-session reuse makes repeated
// verification allocation-free. The view overloads additionally consume
// span-backed responses (core/protocol.h) straight off a receive buffer —
// the wire layer's view decoders pair with them for a zero-copy
// decode-to-verdict pipeline.
// ---------------------------------------------------------------------------

Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponse& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics,
                             VerifyScratch& scratch);

Verdict verify_sample_proofs(const Task& task, const TreeSettings& settings,
                             const Commitment& commitment,
                             std::span<const LeafIndex> expected_samples,
                             const ProofResponseView& response,
                             const ResultVerifier& verifier,
                             SupervisorMetrics* metrics,
                             VerifyScratch& scratch);

Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponse& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics,
                              VerifyScratch& scratch);

Verdict verify_batch_response(const Task& task, const TreeSettings& settings,
                              const Commitment& commitment,
                              std::span<const LeafIndex> expected_samples,
                              const BatchProofResponseView& response,
                              const ResultVerifier& verifier,
                              SupervisorMetrics* metrics,
                              VerifyScratch& scratch);

}  // namespace ugc
