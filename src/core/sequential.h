#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "core/settings.h"
#include "core/verification.h"

namespace ugc {

// Sequential (adaptive) sampling — an extension the paper's fixed-m design
// leaves open.
//
// CBS verifies samples against an already-fixed commitment, so nothing
// stops the supervisor from issuing samples *one at a time* and stopping as
// soon as it is statistically sure. Wald's Sequential Probability Ratio
// Test over per-sample pass/fail outcomes gives exactly that:
//
//   H_honest : each sample passes with probability p0 (1 − channel noise)
//   H_cheater: each sample passes with probability p1 = r + (1−r)q
//
// With a noise-free channel (p0 = 1) the accept rule degenerates to the
// paper's Eq. 3 fixed m and any failure is immediately conclusive. With a
// noisy channel (e.g. proofs occasionally corrupted in transit) the paper's
// zero-tolerance rule would reject honest participants with probability
// 1 − (1−e)^m; the SPRT keeps both error rates bounded while still stopping
// early on cheaters (~1/(1−p1) samples instead of m).

enum class SprtDecision {
  kContinue,  // keep sampling
  kAccept,    // consistent with the honest hypothesis
  kReject,    // consistent with the cheating hypothesis
};

const char* to_string(SprtDecision decision);

// SprtConfig lives in core/settings.h (it ships inside CbsConfig).

// The pure statistical test over pass/fail observations.
class Sprt {
 public:
  explicit Sprt(SprtConfig config);

  // Records one outcome and returns the (possibly terminal) decision.
  // Further observations after a terminal decision throw.
  SprtDecision observe(bool pass);

  SprtDecision decision() const { return decision_; }
  std::size_t observations() const { return observations_; }

  // Cumulative log-likelihood ratio log(P[data|cheater] / P[data|honest]).
  double log_likelihood_ratio() const { return llr_; }

  // Wald's approximate expected sample counts under each hypothesis.
  static double expected_samples_honest(const SprtConfig& config);
  static double expected_samples_cheater(const SprtConfig& config);

  // The fixed-m equivalent for a noise-free channel: smallest k with
  // p_cheater^k <= false_accept (matches required_sample_size).
  static std::size_t fixed_m_equivalent(const SprtConfig& config);

 private:
  SprtConfig config_;
  double llr_ = 0.0;
  double accept_threshold_;  // log(beta / (1 - alpha))
  double reject_threshold_;  // log((1 - beta) / alpha)
  double llr_pass_;
  double llr_fail_;
  std::size_t observations_ = 0;
  SprtDecision decision_ = SprtDecision::kContinue;
};

// Rolling-window SPRT for pipelined (epoched) verification. The one-shot
// Sprt accumulates evidence forever, which dilutes a late defector: a
// cheater honest for the first k epochs banks k·samples passing
// observations, and its post-defection failures must first pay that credit
// back. The rolling variant instead scores the log-likelihood ratio over
// only the last `window_epochs` epochs of observations, so the evidence a
// defector faces is always about its *recent* conduct.
//
// Asymmetric by design: kReject is terminal (accusation), but there is no
// mid-stream kAccept — an accept decision would let a sleeper bank a clean
// window and defect after it. Acceptance is structural: every epoch
// verified and the final epoch acknowledged (the pipelined supervisor
// session decides that, not the test).
class RollingSprt {
 public:
  RollingSprt(SprtConfig config, std::size_t window_epochs);

  // Records one pass/fail observation in the current epoch. With
  // pass_prob_honest == 1 any failure is immediately conclusive (the
  // paper's zero-tolerance rule), exactly like the one-shot test.
  SprtDecision observe(bool pass);

  // Closes the current epoch; observations older than `window_epochs`
  // epochs stop counting toward the ratio.
  void end_epoch();

  SprtDecision decision() const { return decision_; }
  std::size_t observations() const { return observations_; }

  // Windowed log(P[data|cheater] / P[data|honest]).
  double log_likelihood_ratio() const {
    return static_cast<double>(passes_) * llr_pass_ +
           static_cast<double>(fails_) * llr_fail_;
  }

 private:
  SprtConfig config_;
  std::size_t window_epochs_;
  double reject_threshold_;
  double llr_pass_;
  double llr_fail_;
  std::uint64_t passes_ = 0;  // within the window
  std::uint64_t fails_ = 0;
  // Per-epoch (passes, fails), most recent last; bounded by window_epochs.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> window_;
  std::uint64_t epoch_passes_ = 0;
  std::uint64_t epoch_fails_ = 0;
  std::size_t observations_ = 0;
  SprtDecision decision_ = SprtDecision::kContinue;
};

// Supervisor endpoint for the adaptive protocol: issues one sample per
// round and folds the proof outcome into the SPRT. The participant side is
// the ordinary CbsParticipant — it answers each single-sample challenge
// with respond().
class AdaptiveCbsSupervisor {
 public:
  AdaptiveCbsSupervisor(Task task, TreeSettings tree, SprtConfig sprt,
                        std::shared_ptr<const ResultVerifier> verifier,
                        Rng rng);

  // Records the commitment; must be called once before sampling.
  void receive_commitment(const Commitment& commitment);

  // The next single-sample challenge, or nullopt once decided.
  std::optional<SampleChallenge> next_challenge();

  // Verifies the response to the latest challenge and advances the test.
  SprtDecision submit(const ProofResponse& response);

  SprtDecision decision() const { return sprt_.decision(); }
  std::size_t samples_used() const { return sprt_.observations(); }
  const SupervisorMetrics& metrics() const { return metrics_; }

 private:
  Task task_;
  TreeSettings tree_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Rng rng_;
  Sprt sprt_;
  std::optional<Commitment> commitment_;
  std::optional<LeafIndex> outstanding_;
  SupervisorMetrics metrics_;
  VerifyScratch scratch_;
};

}  // namespace ugc
