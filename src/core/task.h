#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "common/types.h"

namespace ugc {

// The contiguous input domain D = {x_0 .. x_{n-1}} assigned to a participant.
// Inputs are 64-bit values; workloads map them to whatever structure they
// need (candidate keys, signal block seeds, molecule ids, ...).
class Domain {
 public:
  // Half-open interval [begin, end); must be non-empty.
  Domain(std::uint64_t begin, std::uint64_t end) : begin_(begin), end_(end) {
    check(begin < end, "Domain: empty interval [", begin, ", ", end, ")");
  }

  std::uint64_t begin() const { return begin_; }
  std::uint64_t end() const { return end_; }
  std::uint64_t size() const { return end_ - begin_; }

  // The i-th input x_i.
  std::uint64_t input(LeafIndex i) const {
    check(i.value < size(), "Domain: index ", i.value, " out of range (n=",
          size(), ")");
    return begin_ + i.value;
  }

  bool contains(std::uint64_t x) const { return x >= begin_ && x < end_; }

  // Splits into `parts` near-equal contiguous subdomains (for the grid
  // scheduler). Earlier parts get the remainder.
  std::vector<Domain> split(std::size_t parts) const;

  friend bool operator==(const Domain&, const Domain&) = default;

 private:
  std::uint64_t begin_;
  std::uint64_t end_;
};

// The function f : X -> T the grid evaluates. Results are fixed-width byte
// strings so that guessed values, wire encodings, and Merkle leaves are
// well-defined without evaluating f.
class ComputeFunction {
 public:
  virtual ~ComputeFunction() = default;

  ComputeFunction() = default;
  ComputeFunction(const ComputeFunction&) = delete;
  ComputeFunction& operator=(const ComputeFunction&) = delete;

  // Evaluates f(x). Must be deterministic, and safe to call concurrently
  // from multiple threads — the participant engine sweeps large domains in
  // parallel. Keep implementations stateless or guard mutable members
  // (CountingComputeFunction's atomic counter is the model).
  virtual Bytes evaluate(std::uint64_t x) const = 0;

  // Evaluates f(x) into `out` (result_size() bytes), the allocation-free
  // form the supervisor's verification hot loop recomputes samples through.
  // The default wraps evaluate(); hot workloads override it.
  virtual void evaluate_into(std::uint64_t x,
                             std::span<std::uint8_t> out) const {
    const Bytes value = evaluate(x);
    check(out.size() == value.size(), "evaluate_into: need ", value.size(),
          " bytes, got ", out.size());
    std::memcpy(out.data(), value.data(), value.size());
  }

  // Width of every result in bytes (> 0).
  virtual std::size_t result_size() const = 0;

  virtual std::string name() const = 0;
};

// Decorator that counts evaluations; used for all cost accounting (honest
// work, cheater work, supervisor verification work).
class CountingComputeFunction final : public ComputeFunction {
 public:
  explicit CountingComputeFunction(std::shared_ptr<const ComputeFunction> inner)
      : inner_(std::move(inner)) {
    check(inner_ != nullptr, "CountingComputeFunction: inner is null");
  }

  Bytes evaluate(std::uint64_t x) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_->evaluate(x);
  }
  void evaluate_into(std::uint64_t x,
                     std::span<std::uint8_t> out) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    inner_->evaluate_into(x, out);
  }
  std::size_t result_size() const override { return inner_->result_size(); }
  std::string name() const override { return inner_->name(); }

  std::uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  void reset_calls() { calls_.store(0, std::memory_order_relaxed); }

 private:
  std::shared_ptr<const ComputeFunction> inner_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

// The paper's screener S(x; f(x)): emits a report string for "valuable"
// outputs that must reach the supervisor. Its cost is assumed negligible
// next to f.
class Screener {
 public:
  virtual ~Screener() = default;

  Screener() = default;
  Screener(const Screener&) = delete;
  Screener& operator=(const Screener&) = delete;

  // Returns a report when (x, f(x)) is of interest, std::nullopt otherwise.
  // Must be deterministic and thread-safe: the participant engine screens
  // leaves concurrently during the parallel domain sweep.
  virtual std::optional<std::string> screen(std::uint64_t x,
                                            BytesView fx) const = 0;

  virtual std::string name() const = 0;
};

// Screener that reports nothing — for pure verification experiments.
class NullScreener final : public Screener {
 public:
  std::optional<std::string> screen(std::uint64_t, BytesView) const override {
    return std::nullopt;
  }
  std::string name() const override { return "null"; }
};

// One "valuable" output reported to the supervisor.
struct ScreenerHit {
  std::uint64_t x = 0;
  std::string report;

  friend bool operator==(const ScreenerHit&, const ScreenerHit&) = default;
};

// A unit of grid work handed to one participant: evaluate f over `domain`,
// report screener hits. Function objects are shared so tasks copy cheaply
// across simulated nodes.
struct Task {
  TaskId id;
  Domain domain;
  std::shared_ptr<const ComputeFunction> f;
  std::shared_ptr<const Screener> screener;

  static Task make(TaskId id, Domain domain,
                   std::shared_ptr<const ComputeFunction> f,
                   std::shared_ptr<const Screener> screener = nullptr) {
    check(f != nullptr, "Task: compute function required");
    if (screener == nullptr) {
      screener = std::make_shared<NullScreener>();
    }
    return Task{id, domain, std::move(f), std::move(screener)};
  }
};

// Checks a claimed f(x). The paper notes verification can be much cheaper
// than computation (e.g. factoring); generic computations fall back to
// recomputation.
class ResultVerifier {
 public:
  virtual ~ResultVerifier() = default;

  ResultVerifier() = default;
  ResultVerifier(const ResultVerifier&) = delete;
  ResultVerifier& operator=(const ResultVerifier&) = delete;

  virtual bool verify(std::uint64_t x, BytesView claimed_fx) const = 0;
  virtual std::string name() const = 0;
};

// Generic verifier: recompute f(x) and compare bytes.
class RecomputeVerifier final : public ResultVerifier {
 public:
  explicit RecomputeVerifier(std::shared_ptr<const ComputeFunction> f)
      : f_(std::move(f)) {
    check(f_ != nullptr, "RecomputeVerifier: compute function required");
  }

  bool verify(std::uint64_t x, BytesView claimed_fx) const override {
    // Recompute into a stack buffer for typical result widths so the
    // supervisor's per-sample check allocates nothing; the comparison (and
    // the evaluation count) is identical to the evaluate() form.
    constexpr std::size_t kMaxStackResult = 128;
    const std::size_t size = f_->result_size();
    if (size <= kMaxStackResult) {
      std::uint8_t computed[kMaxStackResult];
      f_->evaluate_into(x, std::span<std::uint8_t>(computed, size));
      return equal_bytes(BytesView(computed, size), claimed_fx);
    }
    return equal_bytes(f_->evaluate(x), claimed_fx);
  }
  std::string name() const override { return "recompute(" + f_->name() + ")"; }

 private:
  std::shared_ptr<const ComputeFunction> f_;
};

}  // namespace ugc
