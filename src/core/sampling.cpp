#include "core/sampling.h"

#include <unordered_set>

#include "common/error.h"

namespace ugc {

std::vector<LeafIndex> sample_with_replacement(Rng& rng, std::uint64_t n,
                                               std::size_t m) {
  check(n >= 1, "sample_with_replacement: n must be >= 1");
  std::vector<LeafIndex> samples;
  samples.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    samples.push_back(LeafIndex{rng.uniform(n)});
  }
  return samples;
}

std::vector<LeafIndex> sample_without_replacement(Rng& rng, std::uint64_t n,
                                                  std::size_t m) {
  check(n >= 1, "sample_without_replacement: n must be >= 1");
  check(m <= n, "sample_without_replacement: m=", m, " exceeds n=", n);

  // Floyd's algorithm: for j = n-m .. n-1, draw t in [0, j]; insert t unless
  // already chosen, in which case insert j.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<LeafIndex> samples;
  samples.reserve(m);
  for (std::uint64_t j = n - m; j < n; ++j) {
    const std::uint64_t t = rng.uniform(j + 1);
    const std::uint64_t pick = chosen.contains(t) ? j : t;
    chosen.insert(pick);
    samples.push_back(LeafIndex{pick});
  }
  return samples;
}

std::vector<LeafIndex> derive_samples(BytesView root, std::uint64_t n,
                                      std::size_t m, const HashFunction& g) {
  check(n >= 1, "derive_samples: n must be >= 1");
  check(g.digest_size() >= 8,
        "derive_samples: sample hash digest must be at least 8 bytes");

  std::vector<LeafIndex> samples;
  samples.reserve(m);
  derive_samples_early_exit(
      root, n, m, g, [](LeafIndex) { return true; }, samples);
  return samples;
}

}  // namespace ugc
