#pragma once

#include <memory>

#include "core/cheating.h"
#include "core/engine.h"
#include "core/settings.h"
#include "core/verification.h"
#include "crypto/iterated_hash.h"

namespace ugc {

// Non-interactive CBS (§4): the participant derives the sample indices from
// its own commitment root via the one-way chain g (Eq. 4), so no challenge
// round-trip is needed — essential when a broker (GRACE's GRB) hides
// participants from the supervisor.
class NiCbsParticipant {
 public:
  NiCbsParticipant(Task task, NiCbsConfig config,
                   std::shared_ptr<const HonestyPolicy> policy);

  // Runs the whole participant side: sweep + commit, derive samples from
  // Φ(R), and assemble the proof bundle. Idempotent.
  NiCbsProof prove();

  ScreenerReport screener_report() const;
  const ParticipantMetrics& metrics() const { return engine_.metrics(); }
  // g invocations spent deriving samples (m for one honest proof).
  std::uint64_t sample_hash_invocations() const { return g_invocations_; }

 private:
  NiCbsConfig config_;
  ParticipantEngine engine_;
  std::unique_ptr<const IteratedHash> g_;
  std::optional<NiCbsProof> proof_;
  std::uint64_t g_invocations_ = 0;
};

// Supervisor endpoint: re-derives the samples from the committed root and
// runs the standard Step 4 verification. Stateless across proofs.
class NiCbsSupervisor {
 public:
  NiCbsSupervisor(Task task, NiCbsConfig config,
                  std::shared_ptr<const ResultVerifier> verifier);

  Verdict verify(const NiCbsProof& proof);

  const SupervisorMetrics& metrics() const { return metrics_; }
  // g invocations spent re-deriving samples.
  std::uint64_t sample_hash_invocations() const { return g_invocations_; }

 private:
  Task task_;
  NiCbsConfig config_;
  std::shared_ptr<const ResultVerifier> verifier_;
  std::unique_ptr<const IteratedHash> g_;
  SupervisorMetrics metrics_;
  std::uint64_t g_invocations_ = 0;
  VerifyScratch scratch_;
};

// One-shot non-interactive exchange.
struct NiCbsRunResult {
  Verdict verdict;
  ScreenerReport report;
  ParticipantMetrics participant_metrics;
  SupervisorMetrics supervisor_metrics;
};

NiCbsRunResult run_nicbs_exchange(const Task& task, const NiCbsConfig& config,
                                  std::shared_ptr<const HonestyPolicy> policy,
                                  std::shared_ptr<const ResultVerifier> verifier);

}  // namespace ugc
