#include "core/scheme_config.h"

namespace ugc {

const char* to_string(LeafMode mode) {
  switch (mode) {
    case LeafMode::kRaw:
      return "raw";
    case LeafMode::kHashed:
      return "hashed";
  }
  return "unknown";
}

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kDoubleCheck:
      return "double-check";
    case SchemeKind::kNaiveSampling:
      return "naive-sampling";
    case SchemeKind::kCbs:
      return "cbs";
    case SchemeKind::kNiCbs:
      return "ni-cbs";
    case SchemeKind::kRinger:
      return "ringer";
  }
  return "unknown";
}

}  // namespace ugc
