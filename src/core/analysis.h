#pragma once

#include <cstdint>
#include <optional>

namespace ugc {

// Closed-form security and cost analysis from the paper. These are the
// formulas the Monte-Carlo benches validate empirically.

// Theorem 3 / Eq. 2: probability that a participant with honesty ratio r and
// guess accuracy q survives m independent uniform samples,
//   Pr = (r + (1-r)q)^m.
// Requires r, q in [0, 1].
double cheat_success_probability(double honesty_ratio, double guess_accuracy,
                                 std::size_t sample_count);

// Eq. 3: smallest m with (r + (1-r)q)^m <= epsilon. Returns std::nullopt when
// no finite m works (i.e. r + (1-r)q >= 1: the participant is effectively
// honest or guesses perfectly). epsilon must be in (0, 1).
std::optional<std::size_t> required_sample_size(double epsilon,
                                                double honesty_ratio,
                                                double guess_accuracy);

// Naive-sampling detection probability quoted in §1: a cheater that computed
// a fraction r survives m spot-checks with probability r^m (q = 0).
double naive_sampling_escape_probability(double honesty_ratio,
                                         std::size_t sample_count);

// §3.3: relative computation overhead of the partial-tree storage scheme,
//   rco = m · 2^ℓ / 2^H  =  2m / S,
// where S = 2^(H-ℓ+1) is the number of stored nodes.
double rco_from_levels(std::size_t sample_count, unsigned tree_height,
                       unsigned subtree_height);
double rco_from_storage(std::size_t sample_count, double stored_nodes);

// §4.2: expected number of commitment re-rolls the NI-CBS retry attacker
// needs before all m self-derived samples land in its computed subset:
// 1 / r^m. Infinite (huge) for r -> 0.
double expected_retry_attempts(double honesty_ratio, std::size_t sample_count);

// Eq. 5: the inequality (1/r^m) · m · Cg >= n · Cf makes the expected cost of
// the retry attack exceed the cost of honest computation.

// Minimum per-call cost of g (same unit as cost_f) to satisfy Eq. 5.
double min_sample_gen_cost(double honesty_ratio, std::size_t sample_count,
                           std::uint64_t domain_size, double cost_f);

// Number of base-hash iterations k such that k · cost_hash >= the Eq. 5
// minimum Cg. Returns at least 1.
std::uint64_t iterations_for_defense(double honesty_ratio,
                                     std::size_t sample_count,
                                     std::uint64_t domain_size, double cost_f,
                                     double cost_hash);

// The honest participant's extra cost from expensive sample generation,
// relative to the whole task: m · Cg / (n · Cf). With Cg at the Eq. 5
// minimum this is ~ r^m.
double honest_sample_gen_overhead(std::size_t sample_count, double cost_g,
                                  std::uint64_t domain_size, double cost_f);

// ----------------------------------------------------------------------
// Communication-cost models (bytes), used by bench_comm_cost to extrapolate
// beyond what the simulator materializes. These deliberately count only
// payload bytes (results, digests, indices), mirroring the paper's O(·)
// arguments; the metered simulation adds real envelope overhead on top.

// Naive double-check / naive sampling: the participant uploads all n results.
double upload_bytes_all_results(std::uint64_t domain_size,
                                std::size_t result_size);

// CBS: one commitment digest + m proofs, each carrying a result and
// ceil(log2 n) siblings (digest-sized in hashed-leaf mode; at the bottom
// level a raw result in raw mode — we charge digest size for uniformity,
// plus the result itself).
double cbs_upload_bytes(std::uint64_t domain_size, std::size_t sample_count,
                        std::size_t result_size, std::size_t digest_size);

}  // namespace ugc
