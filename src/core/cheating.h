#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/types.h"
#include "core/task.h"

namespace ugc {

// Decides, per input, what a participant uses as "f(x_i)" — the genuine
// value or a cheap substitute f̌(x_i) (the paper's semi-honest model, §2.2).
//
// Decisions must be deterministic in the leaf index: the participant may be
// asked for the same leaf again while rebuilding a partial-tree subtree
// (§3.3), and a real cheater would likewise reuse its stored guess.
// decide() must also be thread-safe — the engine's domain sweep evaluates
// disjoint leaf ranges concurrently (derive per-index values statelessly,
// as SemiHonestCheater does).
class HonestyPolicy {
 public:
  virtual ~HonestyPolicy() = default;

  HonestyPolicy() = default;
  HonestyPolicy(const HonestyPolicy&) = delete;
  HonestyPolicy& operator=(const HonestyPolicy&) = delete;

  struct LeafDecision {
    Bytes value;   // the bytes committed as Φ(L_i)'s preimage
    bool honest;   // true iff f was genuinely evaluated (for cost accounting)
  };

  virtual LeafDecision decide(LeafIndex i, const Task& task) const = 0;

  // True iff index i belongs to the honestly computed subset D'.
  virtual bool computes_honestly(LeafIndex i) const = 0;

  virtual std::string name() const = 0;
};

// The fully honest participant: D' = D.
class HonestPolicy final : public HonestyPolicy {
 public:
  LeafDecision decide(LeafIndex i, const Task& task) const override;
  bool computes_honestly(LeafIndex) const override { return true; }
  std::string name() const override { return "honest"; }
};

// The semi-honest cheater of §2.2: computes f only on a fraction
// `honesty_ratio` of D (chosen pseudo-randomly per index from `seed`), and
// substitutes a guess elsewhere. With probability `guess_accuracy` (the
// paper's q) a guess happens to equal the true value — emulated by secretly
// consulting f, which costs the *simulation* an evaluation but is not billed
// to the cheater.
class SemiHonestCheater final : public HonestyPolicy {
 public:
  struct Params {
    double honesty_ratio = 0.5;   // r = |D'| / |D|
    double guess_accuracy = 0.0;  // q = Pr[guess == f(x)]
    std::uint64_t seed = 0;       // determinises subset choice and guesses
  };

  explicit SemiHonestCheater(Params params);

  LeafDecision decide(LeafIndex i, const Task& task) const override;
  bool computes_honestly(LeafIndex i) const override;
  std::string name() const override;

  const Params& params() const { return params_; }

 private:
  // Deterministic per-index uniform draw in [0, 1).
  double index_unit(LeafIndex i, std::uint64_t stream) const;

  Params params_;
};

std::shared_ptr<HonestyPolicy> make_honest_policy();
std::shared_ptr<HonestyPolicy> make_semi_honest_cheater(
    SemiHonestCheater::Params params);

// The *malicious* model of §2.2: the participant may do all the f-work but
// corrupt the screener channel — computing S(x, z) for junk z, or silently
// dropping discoveries. CBS commits to f values, not to screener reports,
// so this conduct is outside what CBS alone detects (the paper scopes CBS
// to the semi-honest model); the grid layer demonstrates both the gap and
// the standard mitigations (supervisor-side screening of uploaded results,
// and recompute-validation of reported hits).
enum class ScreenerConduct {
  kFaithful,   // report exactly S(x, claimed value)
  kSuppress,   // report nothing — hide every discovery
  kFabricate,  // replace the report stream with fabricated hits
};

const char* to_string(ScreenerConduct conduct);

}  // namespace ugc
