#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "core/task.h"

namespace ugc {

// Decides, per input, what a participant uses as "f(x_i)" — the genuine
// value or a cheap substitute f̌(x_i) (the paper's semi-honest model, §2.2).
//
// Decisions must be deterministic in the leaf index: the participant may be
// asked for the same leaf again while rebuilding a partial-tree subtree
// (§3.3), and a real cheater would likewise reuse its stored guess.
// decide() must also be thread-safe — the engine's domain sweep evaluates
// disjoint leaf ranges concurrently (derive per-index values statelessly,
// as SemiHonestCheater does).
class HonestyPolicy {
 public:
  virtual ~HonestyPolicy() = default;

  HonestyPolicy() = default;
  HonestyPolicy(const HonestyPolicy&) = delete;
  HonestyPolicy& operator=(const HonestyPolicy&) = delete;

  struct LeafDecision {
    Bytes value;   // the bytes committed as Φ(L_i)'s preimage
    bool honest;   // true iff f was genuinely evaluated (for cost accounting)
  };

  virtual LeafDecision decide(LeafIndex i, const Task& task) const = 0;

  // True iff index i belongs to the honestly computed subset D'.
  virtual bool computes_honestly(LeafIndex i) const = 0;

  virtual std::string name() const = 0;

  // Round-level feedback: the driver (reputation tournament, long-horizon
  // grid) reports each verdict this participant received. Stateless
  // policies ignore it; adaptive attackers condition future conduct on it.
  // Must be thread-safe (the policy object is shared as const).
  virtual void observe_verdict(bool accepted) const { (void)accepted; }
};

// The fully honest participant: D' = D.
class HonestPolicy final : public HonestyPolicy {
 public:
  LeafDecision decide(LeafIndex i, const Task& task) const override;
  bool computes_honestly(LeafIndex) const override { return true; }
  std::string name() const override { return "honest"; }
};

// The semi-honest cheater of §2.2: computes f only on a fraction
// `honesty_ratio` of D (chosen pseudo-randomly per index from `seed`), and
// substitutes a guess elsewhere. With probability `guess_accuracy` (the
// paper's q) a guess happens to equal the true value — emulated by secretly
// consulting f, which costs the *simulation* an evaluation but is not billed
// to the cheater.
class SemiHonestCheater final : public HonestyPolicy {
 public:
  struct Params {
    double honesty_ratio = 0.5;   // r = |D'| / |D|
    double guess_accuracy = 0.0;  // q = Pr[guess == f(x)]
    std::uint64_t seed = 0;       // determinises subset choice and guesses
  };

  explicit SemiHonestCheater(Params params);

  LeafDecision decide(LeafIndex i, const Task& task) const override;
  bool computes_honestly(LeafIndex i) const override;
  std::string name() const override;

  const Params& params() const { return params_; }

 private:
  // Deterministic per-index uniform draw in [0, 1).
  double index_unit(LeafIndex i, std::uint64_t stream) const;

  Params params_;
};

// A sleeper agent: behaves fully honestly until it has survived
// `activate_after` accepted audits (building reputation), then cheats like
// a SemiHonestCheater. The attacker real long-horizon grids must expect —
// one-shot analysis never sees it, and reputation layers must both admit
// the honest phase and still purge the cheating one (Theorem 3 applies
// per-round once active, so detection is only delayed, never avoided).
class AdaptiveCheater final : public HonestyPolicy {
 public:
  struct Params {
    std::size_t activate_after = 3;  // accepted verdicts before cheating
    double honesty_ratio = 0.5;      // r once active
    double guess_accuracy = 0.0;     // q once active
    std::uint64_t seed = 0;
  };

  explicit AdaptiveCheater(Params params);

  LeafDecision decide(LeafIndex i, const Task& task) const override;
  bool computes_honestly(LeafIndex i) const override;
  std::string name() const override;
  void observe_verdict(bool accepted) const override;

  // True once the honest phase is over.
  bool active() const;
  std::uint64_t audits_survived() const;

 private:
  Params params_;
  SemiHonestCheater inner_;
  mutable std::atomic<std::uint64_t> survived_{0};
};

// A colluding participant: a co-conspirator who previously held (or
// observed) the same assignment leaked the positions the supervisor
// sampled, so this policy computes f exactly on the leaked set and guesses
// everywhere else — |D'| = m instead of r·n. Defeats any verifier that
// reuses its challenge positions; caught at the usual (m/n)^m ≈ 0 rate the
// moment the supervisor draws fresh randomness per session (which the grid
// does, including on crash re-assignment).
class ColludingCheater final : public HonestyPolicy {
 public:
  // `leaked` holds leaf indices (positions within the task's domain).
  ColludingCheater(std::vector<std::uint64_t> leaked, std::uint64_t seed);

  LeafDecision decide(LeafIndex i, const Task& task) const override;
  bool computes_honestly(LeafIndex i) const override;
  std::string name() const override;

 private:
  std::unordered_set<std::uint64_t> leaked_;
  std::uint64_t seed_;
};

// The pipelined-verification attacker: honest for every input below an
// absolute domain position `defect_from`, a guesser from there on. Keyed on
// the absolute input x = domain.input(i) — not the local leaf index — so
// the switch-over lands on a well-defined epoch boundary when a long task
// is split into epochs (the mid-computation defector pipelined verification
// exists to catch: an honest prefix, then garbage).
class DefectorCheater final : public HonestyPolicy {
 public:
  struct Params {
    std::uint64_t defect_from = 0;  // first absolute input x done dishonestly
    double guess_accuracy = 0.0;    // q = Pr[guess == f(x)] once defected
    std::uint64_t seed = 0;
  };

  explicit DefectorCheater(Params params);

  LeafDecision decide(LeafIndex i, const Task& task) const override;
  // Interprets the index as the absolute input (exact when the task's
  // domain begins at 0; decide() always resolves through the task).
  bool computes_honestly(LeafIndex i) const override;
  std::string name() const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

std::shared_ptr<HonestyPolicy> make_honest_policy();
std::shared_ptr<HonestyPolicy> make_semi_honest_cheater(
    SemiHonestCheater::Params params);
std::shared_ptr<AdaptiveCheater> make_adaptive_cheater(
    AdaptiveCheater::Params params);
std::shared_ptr<HonestyPolicy> make_colluding_cheater(
    std::vector<std::uint64_t> leaked, std::uint64_t seed);
std::shared_ptr<HonestyPolicy> make_defector_cheater(
    DefectorCheater::Params params);

// The *malicious* model of §2.2: the participant may do all the f-work but
// corrupt the screener channel — computing S(x, z) for junk z, or silently
// dropping discoveries. CBS commits to f values, not to screener reports,
// so this conduct is outside what CBS alone detects (the paper scopes CBS
// to the semi-honest model); the grid layer demonstrates both the gap and
// the standard mitigations (supervisor-side screening of uploaded results,
// and recompute-validation of reported hits).
enum class ScreenerConduct {
  kFaithful,   // report exactly S(x, claimed value)
  kSuppress,   // report nothing — hide every discovery
  kFabricate,  // replace the report stream with fabricated hits
};

const char* to_string(ScreenerConduct conduct);

}  // namespace ugc
