#include "core/engine.h"

#include <algorithm>

#include "common/error.h"
#include "merkle/batch_proof.h"

namespace ugc {

ParticipantEngine::ParticipantEngine(
    Task task, TreeSettings settings,
    std::shared_ptr<const HonestyPolicy> policy)
    : task_(std::move(task)),
      settings_(settings),
      policy_(std::move(policy)),
      hash_(make_hash(settings.tree_hash)) {
  check(policy_ != nullptr, "ParticipantEngine: honesty policy required");
}

Bytes ParticipantEngine::leaf_from_result(BytesView result, LeafMode mode,
                                          const HashFunction& hash) {
  switch (mode) {
    case LeafMode::kRaw:
      return Bytes(result.begin(), result.end());
    case LeafMode::kHashed:
      return hash.hash(result);
  }
  throw Error("leaf_from_result: unknown leaf mode");
}

Bytes ParticipantEngine::leaf_value(LeafIndex i, bool during_build) {
  const HonestyPolicy::LeafDecision decision = policy_->decide(i, task_);
  if (during_build) {
    if (decision.honest) {
      ++metrics_.honest_evaluations;
    } else {
      ++metrics_.guessed_leaves;
    }
    // The participant screens the values it claims to have computed —
    // S(x, f̌(x)) in the semi-honest model.
    if (auto report =
            task_.screener->screen(task_.domain.input(i), decision.value)) {
      hits_.push_back(ScreenerHit{task_.domain.input(i), std::move(*report)});
    }
  } else if (decision.honest) {
    // §3.3 subtree rebuild: the honest values must be recomputed; guessed
    // values are assumed stored (they cost nothing to begin with).
    ++metrics_.rebuild_evaluations;
  }
  return leaf_from_result(decision.value, settings_.leaf_mode, *hash_);
}

Commitment ParticipantEngine::commit() {
  if (!tree_.has_value()) {
    tree_ = PartialMerkleTree::build(
        task_.domain.size(), settings_.storage_subtree_height,
        [this](LeafIndex i) { return leaf_value(i, /*during_build=*/true); },
        *hash_);
  }
  return Commitment{task_.id, task_.domain.size(), tree_->root()};
}

std::vector<SampleProof> ParticipantEngine::prove(
    std::span<const LeafIndex> samples) {
  check(tree_.has_value(), "ParticipantEngine::prove: commit() first");

  std::vector<SampleProof> proofs;
  proofs.reserve(samples.size());
  for (const LeafIndex index : samples) {
    MerkleProof merkle = tree_->prove(
        index,
        [this](LeafIndex i) { return leaf_value(i, /*during_build=*/false); },
        *hash_);

    SampleProof proof;
    proof.index = index;
    if (settings_.leaf_mode == LeafMode::kRaw) {
      // Eq. 1: the leaf *is* the claimed result.
      proof.result = std::move(merkle.leaf_value);
    } else {
      // kHashed: the leaf is hash(result); the response must carry the
      // preimage, fetched from the (deterministic) policy.
      proof.result = policy_->decide(index, task_).value;
    }
    proof.siblings = std::move(merkle.siblings);
    proofs.push_back(std::move(proof));
  }
  return proofs;
}

BatchProofResponse ParticipantEngine::prove_batch(
    std::span<const LeafIndex> samples) {
  check(tree_.has_value(), "ParticipantEngine::prove_batch: commit() first");
  check(!samples.empty(), "ParticipantEngine::prove_batch: empty sample set");

  // Collect the individual paths (works for full and partial storage), then
  // merge. Deduplicate samples first so repeated indices are proven once.
  std::vector<LeafIndex> unique(samples.begin(), samples.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  std::vector<SampleProof> individual = prove(unique);
  std::vector<MerkleProof> merkle;
  merkle.reserve(individual.size());
  BatchProofResponse response;
  response.task = task_.id;
  for (SampleProof& proof : individual) {
    MerkleProof m;
    m.index = proof.index;
    m.leaf_value =
        leaf_from_result(proof.result, settings_.leaf_mode, *hash_);
    m.siblings = std::move(proof.siblings);
    merkle.push_back(std::move(m));
    response.results.emplace_back(proof.index, std::move(proof.result));
  }
  response.siblings = merge_proofs(merkle).siblings;
  return response;
}

}  // namespace ugc
