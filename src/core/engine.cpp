#include "core/engine.h"

#include <algorithm>
#include <optional>
#include <string>

#include "common/error.h"
#include "common/parallel.h"
#include "merkle/batch_proof.h"

namespace ugc {

namespace {

// The domain sweep evaluates one lookahead window of leaves at a time:
// workers fill the window in parallel, then the streaming tree builder
// consumes it in order. Window memory is O(kSweepChunk), preserving the
// §3.3 point of the partial tree; the window is sized to amortize the
// per-window thread spawn across many leaf evaluations.
constexpr std::uint64_t kSweepChunk = 32768;

}  // namespace

ParticipantEngine::ParticipantEngine(
    Task task, TreeSettings settings,
    std::shared_ptr<const HonestyPolicy> policy)
    : task_(std::move(task)),
      settings_(settings),
      policy_(std::move(policy)),
      hash_(make_hash(settings.tree_hash)) {
  check(policy_ != nullptr, "ParticipantEngine: honesty policy required");
}

Bytes ParticipantEngine::leaf_from_result(BytesView result, LeafMode mode,
                                          const HashFunction& hash) {
  switch (mode) {
    case LeafMode::kRaw:
      return Bytes(result.begin(), result.end());
    case LeafMode::kHashed:
      return hash.hash(result);
  }
  throw Error("leaf_from_result: unknown leaf mode");
}

Bytes ParticipantEngine::rebuild_leaf_value(LeafIndex i) {
  const HonestyPolicy::LeafDecision decision = policy_->decide(i, task_);
  if (decision.honest) {
    // §3.3 subtree rebuild: the honest values must be recomputed; guessed
    // values are assumed stored (they cost nothing to begin with).
    ++metrics_.rebuild_evaluations;
  }
  return leaf_from_result(decision.value, settings_.leaf_mode, *hash_);
}

Commitment ParticipantEngine::commit() {
  if (!tree_.has_value()) {
    const std::uint64_t n = task_.domain.size();

    // Per-leaf outcome of one window of the sweep. Workers write disjoint
    // slots; metrics and screener hits are folded in afterwards, in index
    // order, so accounting is byte-identical to a serial sweep.
    struct Slot {
      Bytes value;
      bool honest = false;
      std::optional<std::string> report;
    };
    std::vector<Slot> window;
    std::uint64_t window_base = 0;
    std::uint64_t window_end = 0;

    const auto fill_window = [&](std::uint64_t base) {
      window_base = base;
      window_end = std::min(base + kSweepChunk, n);
      window.resize(window_end - base);
      // The participant screens the values it claims to have computed —
      // S(x, f̌(x)) in the semi-honest model. decide(), screen(), and f are
      // const and deterministic per their contracts, so evaluating disjoint
      // index ranges concurrently is safe.
      const auto evaluate = [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          Slot& slot = window[i - window_base];
          HonestyPolicy::LeafDecision decision =
              policy_->decide(LeafIndex{i}, task_);
          slot.honest = decision.honest;
          slot.report = task_.screener->screen(task_.domain.input(LeafIndex{i}),
                                               decision.value);
          slot.value = std::move(decision.value);
        }
      };
      // Gate on the window, not the domain, so a small final window never
      // spawns threads for a handful of leaves.
      if (window_end - window_base >= kParallelMinimumWork) {
        parallel_for_chunks(window_base, window_end, evaluate);
      } else {
        evaluate(window_base, window_end);
      }
      for (std::uint64_t i = window_base; i < window_end; ++i) {
        Slot& slot = window[i - window_base];
        if (slot.honest) {
          ++metrics_.honest_evaluations;
        } else {
          ++metrics_.guessed_leaves;
        }
        if (slot.report.has_value()) {
          hits_.push_back(ScreenerHit{task_.domain.input(LeafIndex{i}),
                                      std::move(*slot.report)});
          slot.report.reset();
        }
      }
    };

    tree_ = PartialMerkleTree::build(
        n, settings_.storage_subtree_height,
        [&](LeafIndex i) {
          if (i.value >= window_end || i.value < window_base) {
            fill_window(i.value);
          }
          return leaf_from_result(window[i.value - window_base].value,
                                  settings_.leaf_mode, *hash_);
        },
        *hash_);
  }
  return Commitment{task_.id, task_.domain.size(), tree_->root()};
}

std::vector<SampleProof> ParticipantEngine::prove(
    std::span<const LeafIndex> samples) {
  check(tree_.has_value(), "ParticipantEngine::prove: commit() first");

  std::vector<SampleProof> proofs;
  proofs.reserve(samples.size());
  for (const LeafIndex index : samples) {
    MerkleProof merkle = tree_->prove(
        index, [this](LeafIndex i) { return rebuild_leaf_value(i); }, *hash_);

    SampleProof proof;
    proof.index = index;
    if (settings_.leaf_mode == LeafMode::kRaw) {
      // Eq. 1: the leaf *is* the claimed result.
      proof.result = std::move(merkle.leaf_value);
    } else {
      // kHashed: the leaf is hash(result); the response must carry the
      // preimage, fetched from the (deterministic) policy.
      proof.result = policy_->decide(index, task_).value;
    }
    proof.siblings = std::move(merkle.siblings);
    proofs.push_back(std::move(proof));
  }
  return proofs;
}

BatchProofResponse ParticipantEngine::prove_batch(
    std::span<const LeafIndex> samples) {
  check(tree_.has_value(), "ParticipantEngine::prove_batch: commit() first");
  check(!samples.empty(), "ParticipantEngine::prove_batch: empty sample set");

  // Collect the individual paths (works for full and partial storage), then
  // merge. Deduplicate samples first so repeated indices are proven once.
  std::vector<LeafIndex> unique(samples.begin(), samples.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  std::vector<SampleProof> individual = prove(unique);
  std::vector<MerkleProof> merkle;
  merkle.reserve(individual.size());
  BatchProofResponse response;
  response.task = task_.id;
  for (SampleProof& proof : individual) {
    MerkleProof m;
    m.index = proof.index;
    m.leaf_value =
        leaf_from_result(proof.result, settings_.leaf_mode, *hash_);
    m.siblings = std::move(proof.siblings);
    merkle.push_back(std::move(m));
    response.results.emplace_back(proof.index, std::move(proof.result));
  }
  response.siblings = merge_proofs(merkle).siblings;
  return response;
}

}  // namespace ugc
