#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "core/cheating.h"
#include "core/protocol.h"
#include "core/settings.h"
#include "core/task.h"
#include "merkle/partial_tree.h"

namespace ugc {

// Work/cost counters for one participant run.
struct ParticipantMetrics {
  // Genuine f evaluations during the initial domain sweep (the cheater's
  // actual work; equals n for an honest participant).
  std::uint64_t honest_evaluations = 0;
  // Leaves filled with guessed values.
  std::uint64_t guessed_leaves = 0;
  // f re-evaluations forced by §3.3 subtree rebuilds at proof time
  // (numerator of the measured rco).
  std::uint64_t rebuild_evaluations = 0;
};

// The participant-side machinery shared by interactive CBS and NI-CBS:
// sweeps the domain once (through an HonestyPolicy), commits via a
// (possibly partial, §3.3) Merkle tree, collects screener hits, and answers
// sample queries with authentication paths.
class ParticipantEngine {
 public:
  ParticipantEngine(Task task, TreeSettings settings,
                    std::shared_ptr<const HonestyPolicy> policy);

  // Evaluates the domain (per policy), builds the commitment tree, and
  // returns the commitment. Idempotent: subsequent calls return the stored
  // commitment without re-sweeping. Large domains are swept in parallel
  // windows (policy / screener / f are const and deterministic, so
  // concurrent evaluation of disjoint index ranges is safe); the committed
  // bytes, metrics, and screener-hit order are identical to a serial sweep.
  Commitment commit();

  // Builds the proof for each sample (paper Step 3). Requires commit() to
  // have run. Samples outside the domain throw (the supervisor can only ask
  // for indices in [0, n)).
  std::vector<SampleProof> prove(std::span<const LeafIndex> samples);

  // Batched Step 3 (extension): merges the per-sample paths into one
  // deduplicated sibling stream.
  BatchProofResponse prove_batch(std::span<const LeafIndex> samples);

  // Screener hits gathered during the domain sweep, in domain order. The
  // semi-honest cheater screens its guessed values too — S(x, f̌(x)).
  const std::vector<ScreenerHit>& hits() const { return hits_; }

  const ParticipantMetrics& metrics() const { return metrics_; }
  const Task& task() const { return task_; }
  const TreeSettings& settings() const { return settings_; }

  // Maps result bytes to the committed leaf value under `mode` (identity for
  // kRaw — the paper's Eq. 1 — or hash(result) for kHashed). Shared with the
  // supervisor-side verification.
  static Bytes leaf_from_result(BytesView result, LeafMode mode,
                                const HashFunction& hash);

 private:
  // Re-evaluates one leaf for a §3.3 subtree rebuild at proof time (the
  // build-time sweep accounting lives in commit()'s window fold).
  Bytes rebuild_leaf_value(LeafIndex i);

  Task task_;
  TreeSettings settings_;
  std::shared_ptr<const HonestyPolicy> policy_;
  std::unique_ptr<const HashFunction> hash_;
  std::optional<PartialMerkleTree> tree_;
  std::vector<ScreenerHit> hits_;
  ParticipantMetrics metrics_;
};

}  // namespace ugc
