#include "core/nicbs.h"

#include "common/error.h"
#include "core/sampling.h"

namespace ugc {

NiCbsParticipant::NiCbsParticipant(Task task, NiCbsConfig config,
                                   std::shared_ptr<const HonestyPolicy> policy)
    : config_(config),
      engine_(std::move(task), config.tree, std::move(policy)),
      g_(make_iterated_hash(config.sample_hash,
                            config.sample_hash_iterations)) {
  check(config_.sample_count >= 1,
        "NiCbsParticipant: sample_count must be >= 1");
}

NiCbsProof NiCbsParticipant::prove() {
  if (proof_.has_value()) {
    return *proof_;
  }
  const Commitment commitment = engine_.commit();
  const std::vector<LeafIndex> samples =
      derive_samples(commitment.root, engine_.task().domain.size(),
                     config_.sample_count, *g_);
  g_invocations_ += config_.sample_count;

  ProofResponse response;
  response.task = engine_.task().id;
  response.proofs = engine_.prove(samples);

  proof_ = NiCbsProof{commitment, std::move(response)};
  return *proof_;
}

ScreenerReport NiCbsParticipant::screener_report() const {
  return ScreenerReport{engine_.task().id, engine_.hits()};
}

NiCbsSupervisor::NiCbsSupervisor(Task task, NiCbsConfig config,
                                 std::shared_ptr<const ResultVerifier> verifier)
    : task_(std::move(task)),
      config_(config),
      verifier_(std::move(verifier)),
      g_(make_iterated_hash(config.sample_hash,
                            config.sample_hash_iterations)) {
  check(verifier_ != nullptr, "NiCbsSupervisor: result verifier required");
  check(config_.sample_count >= 1,
        "NiCbsSupervisor: sample_count must be >= 1");
}

Verdict NiCbsSupervisor::verify(const NiCbsProof& proof) {
  // Regenerate the sample choices from the committed root (paper Step 4,
  // NI-CBS variant) — the participant cannot influence them after committing.
  const std::vector<LeafIndex> samples =
      derive_samples(proof.commitment.root, task_.domain.size(),
                     config_.sample_count, *g_);
  g_invocations_ += config_.sample_count;
  return verify_sample_proofs(task_, config_.tree, proof.commitment, samples,
                              proof.response, *verifier_, &metrics_, scratch_);
}

NiCbsRunResult run_nicbs_exchange(
    const Task& task, const NiCbsConfig& config,
    std::shared_ptr<const HonestyPolicy> policy,
    std::shared_ptr<const ResultVerifier> verifier) {
  NiCbsParticipant participant(task, config, std::move(policy));
  NiCbsSupervisor supervisor(task, config, std::move(verifier));

  const NiCbsProof proof = participant.prove();
  const Verdict verdict = supervisor.verify(proof);
  return NiCbsRunResult{verdict, participant.screener_report(),
                        participant.metrics(), supervisor.metrics()};
}

}  // namespace ugc
