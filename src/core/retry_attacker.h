#pragma once

#include <cstdint>
#include <vector>

#include "core/cheating.h"
#include "core/protocol.h"
#include "core/settings.h"
#include "core/task.h"

namespace ugc {

// Parameters of the §4.2 attack against non-interactive CBS.
struct RetryAttackConfig {
  // Fraction of the domain the attacker actually computes (its D').
  double honesty_ratio = 0.5;
  // Seeds subset choice, guess bytes, and re-roll randomness.
  std::uint64_t seed = 1;
  // Abort after this many commitment re-rolls (0 = unlimited — only safe for
  // tiny 1/r^m).
  std::uint64_t max_attempts = 1 << 20;
  // When true (an optimization the paper does not model), the attacker stops
  // deriving an attempt's samples at the first index outside D'; the paper's
  // Eq. 5 charges the full m·Cg per attempt. Both accountings are reported.
  bool early_exit = true;
};

struct RetryAttackOutcome {
  bool success = false;
  // Commitment re-rolls used (1 = the initial commitment already worked).
  std::uint64_t attempts = 0;
  // Actual g invocations spent (early exit makes this < attempts·m).
  std::uint64_t g_invocations = 0;
  // g invocations under the paper's full-derivation accounting: attempts·m.
  std::uint64_t g_invocations_full = 0;
  // |D'| — f evaluations the attacker really performed.
  std::uint64_t honest_evaluations = 0;
  // The forged proof; passes NiCbsSupervisor::verify when success is true.
  NiCbsProof proof;
};

// Implements the cheating strategy of §4.2 verbatim:
//
//   1. Build the Merkle tree, guessing f(x) for x outside D'.
//   2. Derive the samples from the root; if all fall inside D', the forged
//      proof will pass verification.
//   3. Otherwise re-randomize one guessed leaf (an O(log n) path update),
//      recompute the root, and try again.
//
// The expected number of attempts is 1/r^m (validated by
// bench_nicbs_attack); the defenses are a larger m or an expensive g
// (Eq. 5).
class NiCbsRetryAttacker {
 public:
  NiCbsRetryAttacker(Task task, NiCbsConfig config, RetryAttackConfig attack);

  RetryAttackOutcome run();

 private:
  Task task_;
  NiCbsConfig config_;
  RetryAttackConfig attack_;
};

}  // namespace ugc
