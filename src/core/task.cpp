#include "core/task.h"

namespace ugc {

std::vector<Domain> Domain::split(std::size_t parts) const {
  check(parts >= 1, "Domain::split: parts must be >= 1");
  check(parts <= size(), "Domain::split: cannot split ", size(),
        " inputs into ", parts, " parts");

  std::vector<Domain> result;
  result.reserve(parts);
  const std::uint64_t base = size() / parts;
  const std::uint64_t remainder = size() % parts;
  std::uint64_t cursor = begin_;
  for (std::size_t i = 0; i < parts; ++i) {
    const std::uint64_t width = base + (i < remainder ? 1 : 0);
    result.emplace_back(cursor, cursor + width);
    cursor += width;
  }
  return result;
}

}  // namespace ugc
