#include "core/sequential.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace ugc {

namespace {

void validate(const SprtConfig& config) {
  check(config.pass_prob_honest > 0.0 && config.pass_prob_honest <= 1.0,
        "SprtConfig: pass_prob_honest must be in (0, 1]");
  check(config.pass_prob_cheater >= 0.0 &&
            config.pass_prob_cheater < config.pass_prob_honest,
        "SprtConfig: need 0 <= pass_prob_cheater < pass_prob_honest");
  check(config.false_reject > 0.0 && config.false_reject < 1.0,
        "SprtConfig: false_reject must be in (0, 1)");
  check(config.false_accept > 0.0 && config.false_accept < 1.0,
        "SprtConfig: false_accept must be in (0, 1)");
  check(config.max_samples >= 1, "SprtConfig: max_samples must be >= 1");
}

double safe_log_ratio(double num, double den) {
  if (num <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (den <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::log(num / den);
}

}  // namespace

const char* to_string(SprtDecision decision) {
  switch (decision) {
    case SprtDecision::kContinue:
      return "continue";
    case SprtDecision::kAccept:
      return "accept";
    case SprtDecision::kReject:
      return "reject";
  }
  return "unknown";
}

Sprt::Sprt(SprtConfig config) : config_(config) {
  validate(config_);
  accept_threshold_ =
      std::log(config_.false_accept / (1.0 - config_.false_reject));
  reject_threshold_ =
      std::log((1.0 - config_.false_accept) / config_.false_reject);
  llr_pass_ =
      safe_log_ratio(config_.pass_prob_cheater, config_.pass_prob_honest);
  llr_fail_ = safe_log_ratio(1.0 - config_.pass_prob_cheater,
                             1.0 - config_.pass_prob_honest);
}

SprtDecision Sprt::observe(bool pass) {
  check(decision_ == SprtDecision::kContinue,
        "Sprt::observe: test already decided (", to_string(decision_), ")");
  ++observations_;
  llr_ += pass ? llr_pass_ : llr_fail_;

  if (llr_ >= reject_threshold_) {
    decision_ = SprtDecision::kReject;
  } else if (llr_ <= accept_threshold_) {
    decision_ = SprtDecision::kAccept;
  } else if (observations_ >= config_.max_samples) {
    // Undecided at the cap: resolve conservatively.
    decision_ = SprtDecision::kReject;
  }
  return decision_;
}

double Sprt::expected_samples_honest(const SprtConfig& config) {
  validate(config);
  const double a = std::log(config.false_accept / (1.0 - config.false_reject));
  const double b =
      std::log((1.0 - config.false_accept) / config.false_reject);
  const double p0 = config.pass_prob_honest;
  const double per_sample =
      p0 * safe_log_ratio(config.pass_prob_cheater, p0) +
      (1.0 - p0) * safe_log_ratio(1.0 - config.pass_prob_cheater, 1.0 - p0);
  // E[LLR at stop | honest] ~ (1-alpha)·a + alpha·b.
  const double alpha = config.false_reject;
  return ((1.0 - alpha) * a + alpha * b) / per_sample;
}

double Sprt::expected_samples_cheater(const SprtConfig& config) {
  validate(config);
  const double a = std::log(config.false_accept / (1.0 - config.false_reject));
  const double b =
      std::log((1.0 - config.false_accept) / config.false_reject);
  const double p1 = config.pass_prob_cheater;
  const double per_sample =
      p1 * safe_log_ratio(p1, config.pass_prob_honest) +
      (1.0 - p1) *
          safe_log_ratio(1.0 - p1, 1.0 - config.pass_prob_honest);
  const double beta = config.false_accept;
  return (beta * a + (1.0 - beta) * b) / per_sample;
}

std::size_t Sprt::fixed_m_equivalent(const SprtConfig& config) {
  validate(config);
  check(config.pass_prob_cheater > 0.0,
        "fixed_m_equivalent: p_cheater = 0 needs exactly 1 sample");
  return static_cast<std::size_t>(std::ceil(
      std::log(config.false_accept) / std::log(config.pass_prob_cheater)));
}

RollingSprt::RollingSprt(SprtConfig config, std::size_t window_epochs)
    : config_(config), window_epochs_(window_epochs) {
  validate(config_);
  check(window_epochs_ >= 1, "RollingSprt: window_epochs must be >= 1");
  reject_threshold_ =
      std::log((1.0 - config_.false_accept) / config_.false_reject);
  llr_pass_ =
      safe_log_ratio(config_.pass_prob_cheater, config_.pass_prob_honest);
  llr_fail_ = safe_log_ratio(1.0 - config_.pass_prob_cheater,
                             1.0 - config_.pass_prob_honest);
}

SprtDecision RollingSprt::observe(bool pass) {
  check(decision_ == SprtDecision::kContinue,
        "RollingSprt::observe: test already decided (", to_string(decision_),
        ")");
  ++observations_;
  pass ? ++passes_ : ++fails_;
  pass ? ++epoch_passes_ : ++epoch_fails_;
  if (log_likelihood_ratio() >= reject_threshold_) {
    decision_ = SprtDecision::kReject;
  }
  return decision_;
}

void RollingSprt::end_epoch() {
  window_.emplace_back(epoch_passes_, epoch_fails_);
  epoch_passes_ = 0;
  epoch_fails_ = 0;
  while (window_.size() > window_epochs_) {
    const auto [passes, fails] = window_.front();
    window_.pop_front();
    passes_ -= passes;
    fails_ -= fails;
  }
}

AdaptiveCbsSupervisor::AdaptiveCbsSupervisor(
    Task task, TreeSettings tree, SprtConfig sprt,
    std::shared_ptr<const ResultVerifier> verifier, Rng rng)
    : task_(std::move(task)),
      tree_(tree),
      verifier_(std::move(verifier)),
      rng_(rng),
      sprt_(sprt) {
  check(verifier_ != nullptr, "AdaptiveCbsSupervisor: verifier required");
}

void AdaptiveCbsSupervisor::receive_commitment(const Commitment& commitment) {
  check(!commitment_.has_value(),
        "AdaptiveCbsSupervisor: commitment already received");
  commitment_ = commitment;
}

std::optional<SampleChallenge> AdaptiveCbsSupervisor::next_challenge() {
  check(commitment_.has_value(),
        "AdaptiveCbsSupervisor: no commitment received yet");
  if (sprt_.decision() != SprtDecision::kContinue) {
    return std::nullopt;
  }
  check(!outstanding_.has_value(),
        "AdaptiveCbsSupervisor: previous challenge still unanswered");
  outstanding_ = LeafIndex{rng_.uniform(task_.domain.size())};
  return SampleChallenge{task_.id, {*outstanding_}};
}

SprtDecision AdaptiveCbsSupervisor::submit(const ProofResponse& response) {
  check(outstanding_.has_value(),
        "AdaptiveCbsSupervisor: no outstanding challenge");
  const LeafIndex expected = *outstanding_;
  outstanding_.reset();

  const std::vector<LeafIndex> samples = {expected};
  const Verdict verdict =
      verify_sample_proofs(task_, tree_, *commitment_, samples, response,
                           *verifier_, &metrics_, scratch_);
  return sprt_.observe(verdict.accepted());
}

}  // namespace ugc
