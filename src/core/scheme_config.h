#pragma once

#include <cstdint>
#include <string>

#include "core/ringer.h"
#include "core/settings.h"

namespace ugc {

// The verification schemes the grid can run. kDoubleCheck and
// kNaiveSampling are the paper's strawman baselines (§1), kRinger is the
// related-work baseline [8], kCbs / kNiCbs are the paper's contribution.
enum class SchemeKind : std::uint8_t {
  kDoubleCheck = 0,
  kNaiveSampling = 1,
  kCbs = 2,
  kNiCbs = 3,
  kRinger = 4,
};

const char* to_string(SchemeKind kind);

// Double-check: the supervisor assigns each subdomain to `replicas`
// participants and compares their full uploads.
struct DoubleCheckConfig {
  std::size_t replicas = 2;

  friend bool operator==(const DoubleCheckConfig&, const DoubleCheckConfig&) =
      default;
};

// Naive sampling (§1's "improved solution"): the participant uploads all n
// results; the supervisor recomputes m random ones.
struct NaiveSamplingConfig {
  std::size_t sample_count = 33;

  friend bool operator==(const NaiveSamplingConfig&,
                         const NaiveSamplingConfig&) = default;
};

// Union of per-scheme parameters; `kind` selects which members apply.
struct SchemeConfig {
  SchemeKind kind = SchemeKind::kCbs;
  // Optional SchemeRegistry name. When non-empty it overrides `kind` during
  // resolution — the hook that lets custom (registered) schemes ride through
  // TaskAssignment without a reserved enum value.
  std::string name;
  DoubleCheckConfig double_check;
  NaiveSamplingConfig naive;
  CbsConfig cbs;
  NiCbsConfig nicbs;
  RingerConfig ringer;
  // Epoched verification (scheme "pipelined-cbs"); epochs <= 1 = one-shot.
  PipelineConfig pipeline;

  friend bool operator==(const SchemeConfig&, const SchemeConfig&) = default;
};

}  // namespace ugc
