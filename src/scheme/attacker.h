#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scheme/registry.h"

namespace ugc {

// ---------------------------------------------------------------------------
// Participant-side attackers that ride the scheme registry. A wrapped scheme
// keeps the genuine supervisor session (attacks must be caught by the
// unmodified verifier) but substitutes a hostile participant session; the
// wrapper is registered under "<base>+<attacker>" and runs through the grid
// like any other scheme — config.scheme.name selects it.
//
// Policy-level attackers (SemiHonestCheater, AdaptiveCheater,
// ColludingCheater) live in core/cheating.h and ride GridConfig's cheater
// specs instead; this module covers attacks that need control of the
// session itself.
// ---------------------------------------------------------------------------

// Commitment equivocation: the participant maintains two result sets over
// the same task — an honest one (A) and a partially guessed one (B) — and
// answers from whichever side suits it: the commitment (Merkle root /
// NI-CBS envelope) comes from A's tree, while every proof, response, and
// upload is drawn from B's. A verifier that checks proofs against the
// commitment it actually received catches this deterministically (root
// mismatch or sample mismatch); one that validates proofs in isolation is
// fooled forever. For commitment-free base schemes the attacker degenerates
// to B's semi-honest conduct.
struct EquivocationParams {
  double honesty_ratio = 0.5;       // B's r
  std::uint64_t seed = 0xec01ab5e;  // xored with the task id per session
};

// Suffix appended to the base scheme's registry name.
inline constexpr const char* kEquivocateSuffix = "+equivocate";

// Returns a scheme named base->name() + "+equivocate" with the hostile
// participant side described above and base's supervisor side untouched.
std::shared_ptr<const VerificationScheme> make_equivocating_scheme(
    std::shared_ptr<const VerificationScheme> base,
    EquivocationParams params = {});

// Registers an equivocating variant of every scheme currently in
// `registry`; returns the new names ("cbs+equivocate", ...).
std::vector<std::string> register_equivocating_schemes(
    SchemeRegistry& registry, EquivocationParams params = {});

}  // namespace ugc
