#include "scheme/nicbs_scheme.h"

#include <utility>

#include "common/error.h"
#include "core/nicbs.h"

namespace ugc {

namespace {

class NiCbsParticipantSession final : public QueuedParticipantSession {
 public:
  explicit NiCbsParticipantSession(ParticipantContext context)
      : participant_(std::move(context.task), context.config.nicbs,
                     context.policy != nullptr ? std::move(context.policy)
                                               : make_honest_policy()) {
    push(participant_.prove());
  }

  void on_message(const SchemeMessage&) override {}  // one-shot

  ScreenerReport screener_report() const override {
    return participant_.screener_report();
  }

  std::uint64_t honest_evaluations() const override {
    return participant_.metrics().honest_evaluations;
  }

  bool finished() const override { return true; }

 private:
  NiCbsParticipant participant_;
};

class NiCbsSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit NiCbsSupervisorSession(SupervisorContext context)
      : config_(context.config.nicbs),
        verifier_(std::move(context.verifier)),
        task_(std::move(context.tasks.at(0))) {
    check(context.tasks.size() == 1,
          "NiCbsSupervisorSession: expected exactly one task per group");
    check(verifier_ != nullptr, "NiCbsSupervisorSession: verifier required");
  }

  void on_message(TaskId task, const SchemeMessage& message) override {
    const auto* proof = std::get_if<NiCbsProof>(&message);
    if (proof == nullptr || task != task_.id || settled(task)) {
      return;
    }
    NiCbsSupervisor supervisor(task_, config_, verifier_);
    Verdict verdict = supervisor.verify(*proof);
    count_verified(supervisor.metrics().results_verified);
    settle(std::move(verdict));
  }

 private:
  NiCbsConfig config_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Task task_;
};

class NiCbsScheme final : public VerificationScheme {
 public:
  std::string name() const override { return "ni-cbs"; }
  std::optional<SchemeKind> kind() const override {
    return SchemeKind::kNiCbs;
  }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<NiCbsParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<NiCbsSupervisorSession>(std::move(context));
  }
};

}  // namespace

std::shared_ptr<const VerificationScheme> make_nicbs_scheme() {
  return std::make_shared<NiCbsScheme>();
}

}  // namespace ugc
