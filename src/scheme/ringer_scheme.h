#pragma once

#include <memory>

#include "scheme/session.h"

namespace ugc {

// The Golle–Mironov ringer baseline [8] as a pluggable scheme. The
// supervisor session plants d secret ringer images at open time and exposes
// them through planted_images(), so the grid ships them inside the task
// assignment; the participant reports every input whose image matches.
std::shared_ptr<const VerificationScheme> make_ringer_scheme();

}  // namespace ugc
