#include "scheme/cbs_scheme.h"

#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "core/cbs.h"
#include "core/sequential.h"

namespace ugc {

namespace {

class CbsParticipantSession final : public QueuedParticipantSession {
 public:
  explicit CbsParticipantSession(ParticipantContext context)
      : batched_(context.config.cbs.use_batch_proofs &&
                 !context.config.cbs.use_sprt),
        participant_(std::move(context.task), context.config.cbs,
                     context.policy != nullptr ? std::move(context.policy)
                                               : make_honest_policy()) {
    push(participant_.commit());
  }

  void on_message(const SchemeMessage& message) override {
    const auto* challenge = std::get_if<SampleChallenge>(&message);
    if (challenge == nullptr || challenge->task != participant_.task().id) {
      return;
    }
    if (batched_) {
      push(participant_.respond_batched(*challenge));
    } else {
      push(participant_.respond(*challenge));
    }
  }

  ScreenerReport screener_report() const override {
    return participant_.screener_report();
  }

  std::uint64_t honest_evaluations() const override {
    return participant_.metrics().honest_evaluations;
  }

  // The supervisor may keep challenging (one challenge per SPRT round); the
  // node closes the session when the verdict lands.
  bool finished() const override { return false; }

 private:
  bool batched_;
  CbsParticipant participant_;
};

class CbsSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit CbsSupervisorSession(SupervisorContext context)
      : config_(context.config.cbs),
        verifier_(std::move(context.verifier)),
        rng_(context.seed),
        task_(std::move(context.tasks.at(0))) {
    check(context.tasks.size() == 1,
          "CbsSupervisorSession: expected exactly one task per group");
    check(verifier_ != nullptr, "CbsSupervisorSession: verifier required");
  }

  void on_message(TaskId task, const SchemeMessage& message) override {
    if (task != task_.id || settled(task)) {
      return;
    }
    if (const auto* commitment = std::get_if<Commitment>(&message)) {
      handle_commitment(*commitment);
    } else if (const auto* response = std::get_if<ProofResponse>(&message)) {
      handle_response(*response);
    } else if (const auto* batched =
                   std::get_if<BatchProofResponse>(&message)) {
      handle_batched(*batched);
    }
  }

 private:
  void handle_commitment(const Commitment& commitment) {
    if (fixed_ != nullptr || adaptive_ != nullptr) {
      return;  // one commitment per task; late duplicates are dropped
    }
    if (config_.use_sprt) {
      adaptive_ = std::make_unique<AdaptiveCbsSupervisor>(
          task_, config_.tree, config_.sprt, verifier_, Rng(rng_.next()));
      adaptive_->receive_commitment(commitment);
      issue_next_adaptive_challenge();
    } else {
      fixed_ = std::make_unique<CbsSupervisor>(task_, config_, verifier_,
                                               Rng(rng_.next()));
      push(task_.id, fixed_->challenge(commitment));
    }
  }

  void handle_response(const ProofResponse& response) {
    if (adaptive_ != nullptr) {
      if (!awaiting_response_) {
        return;  // unsolicited response
      }
      awaiting_response_ = false;
      count_verified(response.proofs.size());
      const SprtDecision decision = adaptive_->submit(response);
      if (decision == SprtDecision::kContinue) {
        issue_next_adaptive_challenge();
        return;
      }
      Verdict verdict;
      verdict.task = task_.id;
      verdict.status = decision == SprtDecision::kAccept
                           ? VerdictStatus::kAccepted
                           : VerdictStatus::kWrongResult;
      verdict.detail = concat("sprt ", to_string(decision), " after ",
                              adaptive_->samples_used(), " samples");
      settle(std::move(verdict));
      return;
    }
    if (fixed_ == nullptr) {
      return;  // response before any commitment
    }
    count_verified(response.proofs.size());
    settle(fixed_->verify(response));
  }

  void handle_batched(const BatchProofResponse& response) {
    if (fixed_ == nullptr) {
      return;  // batched responses pair with the fixed-m supervisor only
    }
    count_verified(response.results.size());
    settle(fixed_->verify_batched(response));
  }

  void issue_next_adaptive_challenge() {
    if (auto challenge = adaptive_->next_challenge()) {
      awaiting_response_ = true;
      push(task_.id, std::move(*challenge));
    }
  }

  CbsConfig config_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Rng rng_;
  Task task_;
  std::unique_ptr<CbsSupervisor> fixed_;
  std::unique_ptr<AdaptiveCbsSupervisor> adaptive_;
  bool awaiting_response_ = false;
};

class CbsScheme final : public VerificationScheme {
 public:
  std::string name() const override { return "cbs"; }
  std::optional<SchemeKind> kind() const override { return SchemeKind::kCbs; }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<CbsParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<CbsSupervisorSession>(std::move(context));
  }
};

}  // namespace

std::shared_ptr<const VerificationScheme> make_cbs_scheme() {
  return std::make_shared<CbsScheme>();
}

}  // namespace ugc
