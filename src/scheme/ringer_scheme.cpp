#include "scheme/ringer_scheme.h"

#include <utility>

#include "common/error.h"
#include "core/ringer.h"

namespace ugc {

namespace {

class RingerParticipantSession final : public QueuedParticipantSession {
 public:
  explicit RingerParticipantSession(ParticipantContext context)
      : task_id_(context.task.id),
        participant_(std::move(context.task),
                     std::move(context.assignment_images),
                     context.policy != nullptr ? std::move(context.policy)
                                               : make_honest_policy()) {
    push(participant_.scan());
  }

  void on_message(const SchemeMessage&) override {}  // one-shot

  ScreenerReport screener_report() const override {
    return ScreenerReport{task_id_, participant_.hits()};
  }

  std::uint64_t honest_evaluations() const override {
    return participant_.honest_evaluations();
  }

  bool finished() const override { return true; }

 private:
  TaskId task_id_;
  RingerParticipant participant_;
};

class RingerSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit RingerSupervisorSession(SupervisorContext context)
      : task_(std::move(context.tasks.at(0))),
        supervisor_(task_, planted_config(context)) {
    check(context.tasks.size() == 1,
          "RingerSupervisorSession: expected exactly one task per group");
  }

  std::vector<Bytes> planted_images(TaskId task) const override {
    return task == task_.id ? supervisor_.planted_images()
                            : std::vector<Bytes>{};
  }

  void on_message(TaskId task, const SchemeMessage& message) override {
    const auto* report = std::get_if<RingerReport>(&message);
    if (report == nullptr || task != task_.id || settled(task)) {
      return;
    }
    const RingerVerdict rv = supervisor_.verify(*report);
    Verdict verdict;
    verdict.task = task_.id;
    verdict.status =
        rv.accepted ? VerdictStatus::kAccepted : VerdictStatus::kWrongResult;
    verdict.detail = concat("ringers found ", rv.ringers_found, "/",
                            rv.ringers_expected);
    settle(std::move(verdict));
  }

 private:
  // Fresh secret ringers per session: the grid hands every group its own
  // seed, which overrides whatever the shared plan config carried.
  static RingerConfig planted_config(const SupervisorContext& context) {
    RingerConfig config = context.config.ringer;
    config.seed = context.seed;
    return config;
  }

  Task task_;
  RingerSupervisor supervisor_;
};

class RingerScheme final : public VerificationScheme {
 public:
  std::string name() const override { return "ringer"; }
  std::optional<SchemeKind> kind() const override {
    return SchemeKind::kRinger;
  }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<RingerParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<RingerSupervisorSession>(std::move(context));
  }
};

}  // namespace

std::shared_ptr<const VerificationScheme> make_ringer_scheme() {
  return std::make_shared<RingerScheme>();
}

}  // namespace ugc
