#include "scheme/attacker.h"

#include <optional>
#include <utility>

#include "common/error.h"

namespace ugc {

namespace {

// Drives an honest session (A) and a cheating session (B) of the base
// scheme side by side and splices their outboxes: commitments from A,
// everything else from B. NiCbsProof bundles both halves in one message, so
// it is split and re-bundled as {A.commitment, B.response}.
class EquivocatingParticipantSession final : public QueuedParticipantSession {
 public:
  EquivocatingParticipantSession(const VerificationScheme& base,
                                 ParticipantContext context,
                                 EquivocationParams params) {
    ParticipantContext honest = context;
    honest.policy = make_honest_policy();
    ParticipantContext cheating = std::move(context);
    cheating.policy = make_semi_honest_cheater(
        {params.honesty_ratio, /*guess_accuracy=*/0.0,
         params.seed ^ cheating.task.id.value});
    honest_ = base.open_participant(std::move(honest));
    cheating_ = base.open_participant(std::move(cheating));
    splice();
  }

  void on_message(const SchemeMessage& message) override {
    honest_->on_message(message);
    cheating_->on_message(message);
    splice();
  }

  // The honest side screens faithfully — the corrupt channel here is the
  // result commitment, not the screener.
  ScreenerReport screener_report() const override {
    return honest_->screener_report();
  }

  // Both result sets really get computed; the equivocator pays for its own
  // duplicity.
  std::uint64_t honest_evaluations() const override {
    return honest_->honest_evaluations() + cheating_->honest_evaluations();
  }

  bool finished() const override {
    return honest_->finished() && cheating_->finished();
  }

 private:
  void splice() {
    while (auto message = honest_->next_message()) {
      if (std::holds_alternative<Commitment>(*message)) {
        push(std::move(*message));
      } else if (auto* proof = std::get_if<NiCbsProof>(&*message)) {
        honest_proof_ = std::move(*proof);
      }
      // A's proofs/responses/uploads are discarded: only its commitment
      // speaks.
    }
    while (auto message = cheating_->next_message()) {
      if (auto* proof = std::get_if<NiCbsProof>(&*message)) {
        cheating_proof_ = std::move(*proof);
      } else if (!std::holds_alternative<Commitment>(*message)) {
        push(std::move(*message));
      }
    }
    if (honest_proof_.has_value() && cheating_proof_.has_value()) {
      push(NiCbsProof{std::move(honest_proof_->commitment),
                      std::move(cheating_proof_->response)});
      honest_proof_.reset();
      cheating_proof_.reset();
    }
  }

  std::unique_ptr<ParticipantSession> honest_;
  std::unique_ptr<ParticipantSession> cheating_;
  std::optional<NiCbsProof> honest_proof_;
  std::optional<NiCbsProof> cheating_proof_;
};

class EquivocatingScheme final : public VerificationScheme {
 public:
  EquivocatingScheme(std::shared_ptr<const VerificationScheme> base,
                     EquivocationParams params)
      : base_(std::move(base)), params_(params) {
    check(base_ != nullptr, "EquivocatingScheme: base scheme required");
  }

  std::string name() const override {
    return base_->name() + kEquivocateSuffix;
  }
  // No wire enum: attacked variants are addressed by name only.
  std::optional<SchemeKind> kind() const override { return std::nullopt; }
  std::size_t replicas(const SchemeConfig& config) const override {
    return base_->replicas(config);
  }
  bool trusts_screener_reports() const override {
    return base_->trusts_screener_reports();
  }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<EquivocatingParticipantSession>(
        *base_, std::move(context), params_);
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return base_->open_supervisor(std::move(context));
  }

 private:
  std::shared_ptr<const VerificationScheme> base_;
  EquivocationParams params_;
};

}  // namespace

std::shared_ptr<const VerificationScheme> make_equivocating_scheme(
    std::shared_ptr<const VerificationScheme> base,
    EquivocationParams params) {
  return std::make_shared<EquivocatingScheme>(std::move(base), params);
}

std::vector<std::string> register_equivocating_schemes(
    SchemeRegistry& registry, EquivocationParams params) {
  std::vector<std::string> registered;
  for (const std::string& name : registry.names()) {
    if (name.find('+') != std::string::npos) {
      continue;  // never stack attackers on attacked variants
    }
    auto wrapped = make_equivocating_scheme(registry.share(name), params);
    registered.push_back(wrapped->name());
    registry.register_scheme(std::move(wrapped));
  }
  return registered;
}

}  // namespace ugc
