#pragma once

#include <memory>

#include "scheme/session.h"

namespace ugc {

// Non-interactive CBS (§4) as a pluggable scheme: the participant ships one
// self-contained proof (commitment + response to root-derived samples), so
// the session needs no challenge round — essential when a broker hides
// participants from the supervisor.
std::shared_ptr<const VerificationScheme> make_nicbs_scheme();

}  // namespace ugc
