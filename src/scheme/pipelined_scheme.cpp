#include "scheme/pipelined_scheme.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/sequential.h"
#include "core/verification.h"

namespace ugc {

namespace {

// Both sides derive the identical epoch layout from the shipped config, so
// the clamp must match bit-for-bit: at least one epoch, and never more
// epochs than inputs (Domain::split rejects empty parts).
std::uint64_t effective_epochs(const PipelineConfig& pipeline,
                               const Domain& domain) {
  return std::min(std::max<std::uint64_t>(pipeline.epochs, 1), domain.size());
}

Task epoch_task(const Task& task, const Domain& subdomain) {
  return Task::make(task.id, subdomain, task.f, task.screener);
}

class PipelinedParticipantSession final : public QueuedParticipantSession {
 public:
  explicit PipelinedParticipantSession(ParticipantContext context)
      : task_(std::move(context.task)),
        tree_(context.config.cbs.tree),
        policy_(context.policy != nullptr ? std::move(context.policy)
                                          : make_honest_policy()),
        epochs_(effective_epochs(context.config.pipeline, task_.domain)),
        max_inflight_(
            std::max<std::size_t>(context.config.pipeline.max_inflight, 1)),
        domains_(task_.domain.split(epochs_)),
        acked_(std::min(context.resume_epoch, epochs_)),
        next_compute_(acked_) {
    advance();
  }

  void on_message(const SchemeMessage& message) override {
    if (const auto* challenge = std::get_if<EpochChallenge>(&message)) {
      if (challenge->task != task_.id) {
        return;
      }
      const auto it = live_.find(challenge->epoch);
      if (it == live_.end()) {
        return;  // unknown or already-retired epoch
      }
      try {
        ProofResponse response{task_.id,
                               it->second->prove(challenge->samples)};
        push(EpochProofResponse{task_.id, challenge->epoch,
                                std::move(response)});
      } catch (const Error&) {
        // Out-of-range samples (hostile or corrupted challenge): drop.
      }
    } else if (const auto* ack = std::get_if<EpochAck>(&message)) {
      if (ack->task != task_.id || ack->epoch >= epochs_) {
        return;
      }
      acked_ = std::max(acked_, ack->epoch + 1);
      while (!live_.empty() && live_.begin()->first < acked_) {
        retire(live_.begin());
      }
      advance();
    }
  }

  ScreenerReport screener_report() const override {
    ScreenerReport report{task_.id, retired_hits_};
    for (const auto& [epoch, engine] : live_) {
      const auto& hits = engine->hits();
      report.hits.insert(report.hits.end(), hits.begin(), hits.end());
    }
    return report;
  }

  std::uint64_t honest_evaluations() const override {
    std::uint64_t total = retired_evaluations_;
    for (const auto& [epoch, engine] : live_) {
      total += engine->metrics().honest_evaluations;
    }
    return total;
  }

  // Stays open until the node closes it on the terminal verdict.
  bool finished() const override { return false; }

 private:
  // Computes (and commits) epochs until the in-flight window is full. This
  // is where the "pipeline" lives: the next epoch's sweep starts while
  // earlier commitments are still being sampled.
  void advance() {
    while (next_compute_ < epochs_ &&
           next_compute_ < acked_ + max_inflight_) {
      const std::uint64_t epoch = next_compute_++;
      auto engine = std::make_unique<ParticipantEngine>(
          epoch_task(task_, domains_[epoch]), tree_, policy_);
      const Commitment commitment = engine->commit();
      live_.emplace(epoch, std::move(engine));
      push(EpochCommitment{task_.id, epoch, epochs_, commitment});
    }
  }

  void retire(std::map<std::uint64_t,
                       std::unique_ptr<ParticipantEngine>>::iterator it) {
    const auto& engine = *it->second;
    retired_evaluations_ += engine.metrics().honest_evaluations;
    retired_hits_.insert(retired_hits_.end(), engine.hits().begin(),
                         engine.hits().end());
    live_.erase(it);
  }

  Task task_;
  TreeSettings tree_;
  std::shared_ptr<const HonestyPolicy> policy_;
  std::uint64_t epochs_;
  std::size_t max_inflight_;
  std::vector<Domain> domains_;
  std::uint64_t acked_;         // epochs [0, acked_) are verified
  std::uint64_t next_compute_;  // first epoch not yet swept
  // Unacknowledged epoch engines, keyed by epoch (ordered for reporting).
  std::map<std::uint64_t, std::unique_ptr<ParticipantEngine>> live_;
  std::uint64_t retired_evaluations_ = 0;
  std::vector<ScreenerHit> retired_hits_;
};

class PipelinedSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit PipelinedSupervisorSession(SupervisorContext context)
      : pipeline_(context.config.pipeline),
        tree_(context.config.cbs.tree),
        verifier_(std::move(context.verifier)),
        rng_(context.seed),
        task_(std::move(context.tasks.at(0))),
        epochs_(effective_epochs(pipeline_, task_.domain)),
        samples_per_epoch_(
            std::max<std::size_t>(pipeline_.samples_per_epoch, 1)),
        max_inflight_(std::max<std::size_t>(pipeline_.max_inflight, 1)),
        domains_(task_.domain.split(epochs_)),
        sprt_(context.config.cbs.sprt,
              std::max<std::size_t>(pipeline_.window_epochs, 1)) {
    check(context.tasks.size() == 1,
          "PipelinedSupervisorSession: expected exactly one task per group");
    check(verifier_ != nullptr, "PipelinedSupervisorSession: verifier required");
  }

  void on_message(TaskId task, const SchemeMessage& message) override {
    if (task != task_.id || settled(task)) {
      return;
    }
    if (const auto* commitment = std::get_if<EpochCommitment>(&message)) {
      handle_commitment(*commitment);
    } else if (const auto* response =
                   std::get_if<EpochProofResponse>(&message)) {
      handle_response(*response);
    }
  }

  std::optional<std::uint64_t> resume_epoch(TaskId task) const override {
    if (task != task_.id || settled(task)) {
      return std::nullopt;
    }
    return frontier_;
  }

 private:
  void handle_commitment(const EpochCommitment& m) {
    if (m.epoch >= epochs_ || m.epoch_count != epochs_) {
      settle_malformed(m.epoch, "bad epoch index or count");
      return;
    }
    if (m.epoch < frontier_ || m.epoch >= frontier_ + max_inflight_) {
      return;  // stale (already verified) or ahead of the flow window
    }
    if (m.commitment.task != task_.id ||
        m.commitment.leaf_count != domains_[m.epoch].size()) {
      settle_malformed(m.epoch, "commitment shape mismatch");
      return;
    }
    const auto it = commitments_.find(m.epoch);
    if (it != commitments_.end()) {
      if (it->second.root != m.commitment.root) {
        // Two different roots for one epoch is conclusive by itself: the
        // participant (or a replacement resuming deterministically) cannot
        // honestly disagree with its own earlier commitment.
        Verdict verdict;
        verdict.task = task_.id;
        verdict.status = VerdictStatus::kRootMismatch;
        verdict.detail = concat("epoch ", m.epoch, "/", epochs_,
                                ": conflicting commitment roots");
        settle(std::move(verdict));
        return;
      }
      // Same root again: a resumed attempt re-announcing an unverified
      // epoch. Re-challenge with FRESH samples — reusing positions would
      // hand a colluding replacement the sampled set.
    } else {
      commitments_.emplace(m.epoch, m.commitment);
    }
    challenge(m.epoch);
  }

  void challenge(std::uint64_t epoch) {
    std::vector<LeafIndex> samples;
    samples.reserve(samples_per_epoch_);
    for (std::size_t i = 0; i < samples_per_epoch_; ++i) {
      samples.push_back(LeafIndex{rng_.uniform(domains_[epoch].size())});
    }
    outstanding_[epoch] = samples;
    push(task_.id, EpochChallenge{task_.id, epoch, std::move(samples)});
  }

  void handle_response(const EpochProofResponse& m) {
    const auto challenge_it = outstanding_.find(m.epoch);
    if (challenge_it == outstanding_.end()) {
      return;  // unsolicited or duplicate response
    }
    const std::vector<LeafIndex> samples = std::move(challenge_it->second);
    outstanding_.erase(challenge_it);

    if (m.response.task != task_.id ||
        m.response.proofs.size() != samples.size()) {
      settle_malformed(m.epoch, "response shape mismatch");
      return;
    }

    // Verify sample by sample (not the whole batch at once) so every
    // outcome feeds the rolling SPRT individually — with a noisy-channel
    // config a single bad proof is evidence, not an instant verdict.
    const Task sub_task = epoch_task(task_, domains_[m.epoch]);
    const Commitment& commitment = commitments_.at(m.epoch);
    std::vector<BytesView> sibling_views;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const SampleProof& proof = m.response.proofs[i];
      sibling_views.assign(proof.siblings.begin(), proof.siblings.end());
      const SampleProofView proof_view{proof.index, proof.result,
                                       sibling_views};
      const ProofResponseView response_view{
          task_.id, std::span<const SampleProofView>(&proof_view, 1)};
      const Verdict sample_verdict = verify_sample_proofs(
          sub_task, tree_, commitment,
          std::span<const LeafIndex>(&samples[i], 1), response_view,
          *verifier_, &metrics_, scratch_);
      count_verified(1);
      if (sample_verdict.status == VerdictStatus::kMalformed) {
        settle_malformed(m.epoch, sample_verdict.detail);
        return;
      }
      if (sprt_.observe(sample_verdict.accepted()) == SprtDecision::kReject) {
        Verdict verdict;
        verdict.task = task_.id;
        verdict.status = sample_verdict.accepted()
                             ? VerdictStatus::kWrongResult
                             : sample_verdict.status;
        if (sample_verdict.failed_sample.has_value()) {
          verdict.failed_sample = global_index(m.epoch, samples[i]);
        }
        verdict.detail =
            concat("epoch ", m.epoch, "/", epochs_, ": sprt reject after ",
                   sprt_.observations(), " samples (", sample_verdict.detail,
                   ")");
        settle(std::move(verdict));
        return;
      }
    }

    // Epoch sampled clean: acknowledge so the participant can retire the
    // tree, slide the SPRT window, and advance the verified frontier.
    verified_.insert(m.epoch);
    push(task_.id, EpochAck{task_.id, m.epoch});
    sprt_.end_epoch();
    while (verified_.contains(frontier_)) {
      verified_.erase(frontier_);
      ++frontier_;
    }
    if (frontier_ == epochs_) {
      Verdict verdict;
      verdict.task = task_.id;
      verdict.status = VerdictStatus::kAccepted;
      verdict.detail = concat("pipelined: ", epochs_, " epochs verified, ",
                              sprt_.observations(), " samples");
      settle(std::move(verdict));
    }
  }

  LeafIndex global_index(std::uint64_t epoch, LeafIndex local) const {
    return LeafIndex{domains_[epoch].begin() - task_.domain.begin() +
                     local.value};
  }

  void settle_malformed(std::uint64_t epoch, std::string_view detail) {
    Verdict verdict;
    verdict.task = task_.id;
    verdict.status = VerdictStatus::kMalformed;
    verdict.detail = concat("epoch ", epoch, "/", epochs_, ": ", detail);
    settle(std::move(verdict));
  }

  PipelineConfig pipeline_;
  TreeSettings tree_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Rng rng_;
  Task task_;
  std::uint64_t epochs_;
  std::size_t samples_per_epoch_;
  std::size_t max_inflight_;
  std::vector<Domain> domains_;
  RollingSprt sprt_;
  std::uint64_t frontier_ = 0;  // epochs [0, frontier_) are verified
  std::map<std::uint64_t, Commitment> commitments_;
  std::map<std::uint64_t, std::vector<LeafIndex>> outstanding_;
  std::set<std::uint64_t> verified_;  // verified epochs >= frontier_
  SupervisorMetrics metrics_;
  VerifyScratch scratch_;
};

class PipelinedScheme final : public VerificationScheme {
 public:
  std::string name() const override { return "pipelined-cbs"; }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<PipelinedParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<PipelinedSupervisorSession>(std::move(context));
  }
};

}  // namespace

std::shared_ptr<const VerificationScheme> make_pipelined_scheme() {
  return std::make_shared<PipelinedScheme>();
}

}  // namespace ugc
