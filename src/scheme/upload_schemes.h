#pragma once

#include <memory>

#include "scheme/session.h"

namespace ugc {

// The paper's §1 strawman baselines, adapted to the session API. Both share
// the participant side — a plain O(n) sweep uploading every result — and
// differ only in how the supervisor checks the upload:
//
//   double-check:   `replicas` participants get the same subdomain; the
//                   supervisor compares their uploads and arbitrates
//                   disagreeing positions by recomputing the truth.
//   naive sampling: one participant per subdomain; the supervisor recomputes
//                   m random positions of the upload.
//
// Neither trusts participant screener reports: with the full result vector
// in hand the supervisor runs the (cheap) screener itself.
std::shared_ptr<const VerificationScheme> make_double_check_scheme();
std::shared_ptr<const VerificationScheme> make_naive_sampling_scheme();

}  // namespace ugc
