#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scheme/session.h"

namespace ugc {

// Name (and, for built-ins, SchemeKind) -> VerificationScheme. Grid nodes
// resolve TaskAssignment.scheme here, the way they resolve workloads through
// WorkloadRegistry: adding a scheme is one register_scheme() call, not an
// edit to every node. The built-ins ("double-check", "naive-sampling",
// "cbs", "ni-cbs", "ringer") are pre-registered on the global() instance.
class SchemeRegistry {
 public:
  // Shared process-wide registry with the built-ins installed.
  static SchemeRegistry& global();

  // Registers (or replaces) `scheme` under its name(); schemes reporting a
  // kind() are additionally resolvable by that kind.
  void register_scheme(std::shared_ptr<const VerificationScheme> scheme);

  bool contains(const std::string& name) const;
  bool contains(SchemeKind kind) const;

  // Lookups throw ugc::Error for unknown keys.
  const VerificationScheme& by_name(const std::string& name) const;
  const VerificationScheme& by_kind(SchemeKind kind) const;

  // Shared-ownership lookup, for composing schemes (wrappers that must
  // outlive the registry entry they decorate).
  std::shared_ptr<const VerificationScheme> share(const std::string& name) const;

  // config.name when non-empty, else config.kind.
  const VerificationScheme& resolve(const SchemeConfig& config) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::shared_ptr<const VerificationScheme>> by_name_;
  std::map<SchemeKind, std::shared_ptr<const VerificationScheme>> by_kind_;
};

}  // namespace ugc
