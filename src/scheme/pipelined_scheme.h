#pragma once

#include <memory>

#include "scheme/session.h"

namespace ugc {

// Pipelined (epoched) CBS: the long-running-task variant. The task's domain
// is cut into PipelineConfig::epochs contiguous slices (Domain::split); the
// participant sweeps them in order and streams an EpochCommitment the moment
// each slice completes, while the supervisor samples every epoch as it
// lands and accuses *mid-computation* — a cheater defecting at epoch k is
// caught while epochs k+1..E are still uncomputed, bounding wasted grid
// work to O(one epoch) instead of O(the whole task).
//
// Flow control is ack-based: the participant keeps at most
// PipelineConfig::max_inflight unacknowledged epoch trees alive, retiring
// each (and its Merkle tree) on EpochAck. Accusation strength comes from a
// rolling-window SPRT (core/sequential.h) over the last
// PipelineConfig::window_epochs epochs, so a defector's honest prefix never
// dilutes the evidence against its recent conduct. Acceptance is
// structural: every epoch sampled clean, in order.
//
// Crash recovery: SupervisorSession::resume_epoch exposes the first
// unverified epoch; a replacement attempt resumes computing there
// (ParticipantContext::resume_epoch, shipped via the grid's EpochResume)
// instead of redoing acknowledged work.
std::shared_ptr<const VerificationScheme> make_pipelined_scheme();

}  // namespace ugc
