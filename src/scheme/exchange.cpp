#include "scheme/exchange.h"

#include <iterator>
#include <map>
#include <utility>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace ugc {

SchemeExchangeResult run_scheme_exchange(
    const VerificationScheme& scheme, const std::vector<Task>& tasks,
    const SchemeConfig& config, std::shared_ptr<const HonestyPolicy> policy,
    std::shared_ptr<const ResultVerifier> verifier, std::uint64_t seed) {
  check(!tasks.empty(), "run_scheme_exchange: at least one task required");
  if (verifier == nullptr) {
    verifier = std::make_shared<RecomputeVerifier>(tasks.front().f);
  }

  SupervisorContext supervisor_context;
  supervisor_context.tasks = tasks;
  supervisor_context.config = config;
  supervisor_context.verifier = std::move(verifier);
  supervisor_context.seed = seed;
  const std::unique_ptr<SupervisorSession> supervisor =
      scheme.open_supervisor(std::move(supervisor_context));

  std::map<TaskId, std::unique_ptr<ParticipantSession>> participants;
  for (const Task& task : tasks) {
    ParticipantContext context{task, config,
                               supervisor->planted_images(task.id), policy};
    participants.emplace(task.id,
                         scheme.open_participant(std::move(context)));
  }

  SchemeExchangeResult result;
  std::map<TaskId, Verdict> verdicts;

  // Relay until every task is settled. Each round moves every pending
  // message one hop; a round that moves nothing while verdicts are missing
  // means the scheme stalled.
  const std::size_t max_rounds = 1'000'000;
  for (std::size_t round = 0; verdicts.size() < tasks.size(); ++round) {
    check(round < max_rounds, "run_scheme_exchange: relay cap exceeded");
    bool moved = false;

    for (auto& [task_id, participant] : participants) {
      while (auto message = participant->next_message()) {
        supervisor->on_message(task_of(*message), *message);
        moved = true;
      }
    }
    while (auto out = supervisor->next_message()) {
      const auto it = participants.find(out->task);
      check(it != participants.end(),
            "run_scheme_exchange: supervisor addressed unknown task ",
            out->task.value);
      it->second->on_message(out->message);
      moved = true;
    }
    while (auto verdict = supervisor->next_verdict()) {
      verdicts.emplace(verdict->task, std::move(*verdict));
      moved = true;
    }
    while (auto hits = supervisor->next_hits()) {
      result.supervisor_hits.push_back(std::move(*hits));
      moved = true;
    }

    check(moved || verdicts.size() >= tasks.size(),
          "run_scheme_exchange: exchange stalled with ", verdicts.size(),
          " of ", tasks.size(), " verdicts");
  }

  for (const Task& task : tasks) {
    const auto verdict_it = verdicts.find(task.id);
    check(verdict_it != verdicts.end(),
          "run_scheme_exchange: no verdict for task ", task.id.value);
    result.verdicts.push_back(verdict_it->second);
    const auto& participant = participants.at(task.id);
    result.reports.push_back(participant->screener_report());
    result.participant_evaluations += participant->honest_evaluations();
  }
  result.results_verified = supervisor->results_verified();
  return result;
}

SchemeExchangeResult run_scheme_exchange(
    const VerificationScheme& scheme, const Task& task,
    const SchemeConfig& config, std::shared_ptr<const HonestyPolicy> policy,
    std::shared_ptr<const ResultVerifier> verifier, std::uint64_t seed) {
  return run_scheme_exchange(scheme, std::vector<Task>{task}, config,
                             std::move(policy), std::move(verifier), seed);
}

SchemeExchangeResult run_scheme_exchanges_parallel(
    const VerificationScheme& scheme, const std::vector<Task>& tasks,
    const SchemeConfig& config, std::shared_ptr<const HonestyPolicy> policy,
    std::shared_ptr<const ResultVerifier> verifier, std::uint64_t seed,
    unsigned threads) {
  check(!tasks.empty(),
        "run_scheme_exchanges_parallel: at least one task required");

  // Seeds are drawn serially up front so every thread count sees the same
  // per-task streams.
  Rng master(seed);
  std::vector<std::uint64_t> seeds(tasks.size());
  for (std::uint64_t& s : seeds) {
    s = master.next();
  }

  std::vector<SchemeExchangeResult> partial(tasks.size());
  parallel_for(
      0, tasks.size(),
      [&](std::uint64_t i) {
        partial[i] = run_scheme_exchange(scheme, tasks[i], config, policy,
                                         verifier, seeds[i]);
      },
      threads);

  SchemeExchangeResult merged;
  for (SchemeExchangeResult& result : partial) {
    std::move(result.verdicts.begin(), result.verdicts.end(),
              std::back_inserter(merged.verdicts));
    std::move(result.reports.begin(), result.reports.end(),
              std::back_inserter(merged.reports));
    std::move(result.supervisor_hits.begin(), result.supervisor_hits.end(),
              std::back_inserter(merged.supervisor_hits));
    merged.participant_evaluations += result.participant_evaluations;
    merged.results_verified += result.results_verified;
  }
  return merged;
}

}  // namespace ugc
