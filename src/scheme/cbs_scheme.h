#pragma once

#include <memory>

#include "scheme/session.h"

namespace ugc {

// Interactive Commitment-Based Sampling (§3.1) as a pluggable scheme,
// covering all three supervisor variants behind one session:
//
//   plain:   fixed-m challenge, independent authentication paths
//   batched: fixed-m challenge answered with one deduplicated batch proof
//            (CbsConfig::use_batch_proofs)
//   SPRT:    single-sample challenges issued adaptively until Wald's
//            sequential test decides (CbsConfig::use_sprt; takes precedence
//            over batching)
std::shared_ptr<const VerificationScheme> make_cbs_scheme();

}  // namespace ugc
