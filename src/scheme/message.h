#pragma once

#include <variant>

#include "common/types.h"
#include "core/protocol.h"
#include "core/ringer.h"

namespace ugc {

// The protocol value types a verification-scheme session may emit or
// consume, reusing the core/protocol.h value types. A strict subset of the
// grid's wire Message: assignment, screener-report, and verdict traffic is
// handled uniformly by the grid nodes, outside any scheme.
using SchemeMessage =
    std::variant<Commitment, SampleChallenge, ProofResponse,
                 BatchProofResponse, NiCbsProof, ResultsUpload, RingerReport,
                 EpochCommitment, EpochChallenge, EpochProofResponse,
                 EpochAck>;

// The task a scheme message belongs to.
TaskId task_of(const SchemeMessage& message);

// An outbound message from a supervisor session, tagged with the task whose
// peer should receive it (one session may span several tasks — a replica
// group).
struct SchemeOutbound {
  TaskId task;
  SchemeMessage message;
};

}  // namespace ugc
