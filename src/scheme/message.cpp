#include "scheme/message.h"

namespace ugc {

TaskId task_of(const SchemeMessage& message) {
  struct Visitor {
    TaskId operator()(const Commitment& m) { return m.task; }
    TaskId operator()(const SampleChallenge& m) { return m.task; }
    TaskId operator()(const ProofResponse& m) { return m.task; }
    TaskId operator()(const BatchProofResponse& m) { return m.task; }
    TaskId operator()(const NiCbsProof& m) { return m.commitment.task; }
    TaskId operator()(const ResultsUpload& m) { return m.task; }
    TaskId operator()(const RingerReport& m) { return m.task; }
    TaskId operator()(const EpochCommitment& m) { return m.task; }
    TaskId operator()(const EpochChallenge& m) { return m.task; }
    TaskId operator()(const EpochProofResponse& m) { return m.task; }
    TaskId operator()(const EpochAck& m) { return m.task; }
  };
  return std::visit(Visitor{}, message);
}

}  // namespace ugc
