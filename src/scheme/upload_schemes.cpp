#include "scheme/upload_schemes.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "core/sampling.h"

namespace ugc {

namespace {

// Shared participant side: sweep the domain under the honesty policy and
// upload every (possibly guessed) result.
class UploadParticipantSession final : public QueuedParticipantSession {
 public:
  explicit UploadParticipantSession(ParticipantContext context)
      : task_(std::move(context.task)),
        policy_(context.policy != nullptr ? std::move(context.policy)
                                          : make_honest_policy()) {
    ResultsUpload upload;
    upload.task = task_.id;
    const std::uint64_t n = task_.domain.size();
    upload.results.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto decision = policy_->decide(LeafIndex{i}, task_);
      if (decision.honest) {
        ++honest_evaluations_;
      }
      const std::uint64_t x = task_.domain.input(LeafIndex{i});
      if (auto hit = task_.screener->screen(x, decision.value)) {
        hits_.push_back(ScreenerHit{x, std::move(*hit)});
      }
      upload.results.push_back(decision.value);
    }
    push(std::move(upload));
  }

  void on_message(const SchemeMessage&) override {}  // one-shot

  ScreenerReport screener_report() const override {
    return ScreenerReport{task_.id, hits_};
  }

  std::uint64_t honest_evaluations() const override {
    return honest_evaluations_;
  }

  bool finished() const override { return true; }

 private:
  Task task_;
  std::shared_ptr<const HonestyPolicy> policy_;
  std::vector<ScreenerHit> hits_;
  std::uint64_t honest_evaluations_ = 0;
};

// With the full result vector in hand, the supervisor runs the (cheap)
// screener itself — participant screener reports are irrelevant to
// upload-based schemes, which neutralizes §2.2's malicious conduct.
std::vector<ScreenerHit> screen_upload(const Task& task,
                                       const ResultsUpload& upload) {
  std::vector<ScreenerHit> hits;
  for (std::uint64_t i = 0; i < upload.results.size(); ++i) {
    const std::uint64_t x = task.domain.input(LeafIndex{i});
    if (auto hit = task.screener->screen(x, upload.results[i])) {
      hits.push_back(ScreenerHit{x, std::move(*hit)});
    }
  }
  return hits;
}

// Naive sampling (§1's "improved solution"): spot-check m random positions
// of the upload.
class NaiveSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit NaiveSupervisorSession(SupervisorContext context)
      : config_(context.config.naive),
        verifier_(std::move(context.verifier)),
        rng_(context.seed),
        task_(std::move(context.tasks.at(0))) {
    check(context.tasks.size() == 1,
          "NaiveSupervisorSession: expected exactly one task per group");
    check(verifier_ != nullptr, "NaiveSupervisorSession: verifier required");
  }

  void on_message(TaskId task, const SchemeMessage& message) override {
    const auto* upload = std::get_if<ResultsUpload>(&message);
    if (upload == nullptr || task != task_.id || settled(task)) {
      return;
    }
    Verdict verdict = check_upload(*upload);
    const bool accepted = verdict.accepted();
    settle(std::move(verdict));
    if (accepted) {
      report(task_.id, screen_upload(task_, *upload));
    }
  }

 private:
  Verdict check_upload(const ResultsUpload& upload) {
    const std::uint64_t n = task_.domain.size();
    Verdict verdict;
    verdict.task = task_.id;
    if (upload.results.size() != n) {
      verdict.status = VerdictStatus::kMalformed;
      verdict.detail = concat("uploaded ", upload.results.size(),
                              " results for a domain of ", n);
      return verdict;
    }

    const std::size_t m = std::min<std::size_t>(config_.sample_count, n);
    const std::vector<LeafIndex> samples = sample_with_replacement(rng_, n, m);
    for (const LeafIndex index : samples) {
      count_verified(1);
      const std::uint64_t x = task_.domain.input(index);
      if (!verifier_->verify(x, upload.results[index.value])) {
        verdict.status = VerdictStatus::kWrongResult;
        verdict.failed_sample = index;
        verdict.detail = concat("spot-check failed at input ", x);
        return verdict;
      }
    }
    verdict.status = VerdictStatus::kAccepted;
    verdict.detail = concat(m, " spot-checks passed");
    return verdict;
  }

  NaiveSamplingConfig config_;
  std::shared_ptr<const ResultVerifier> verifier_;
  Rng rng_;
  Task task_;
};

// Double-check: hold every replica's upload, then compare position-wise;
// disagreeing positions get arbitrated by recomputing the truth. Unanimous
// positions are accepted unverified — double-check is blind to colluding
// (or identically-guessing) cheaters.
class DoubleCheckSupervisorSession final : public QueuedSupervisorSession {
 public:
  explicit DoubleCheckSupervisorSession(SupervisorContext context)
      : tasks_(std::move(context.tasks)) {
    check(tasks_.size() >= 2,
          "DoubleCheckSupervisorSession: needs >= 2 replica tasks");
    for (std::size_t i = 1; i < tasks_.size(); ++i) {
      check(tasks_[i].domain == tasks_[0].domain,
            "DoubleCheckSupervisorSession: replicas must share a domain");
    }
  }

  void on_message(TaskId task, const SchemeMessage& message) override {
    const auto* upload = std::get_if<ResultsUpload>(&message);
    if (upload == nullptr || !is_member(task) || uploads_.contains(task) ||
        settled(task)) {
      return;
    }
    uploads_.emplace(task, *upload);
    if (uploads_.size() == tasks_.size()) {
      resolve();
    }
  }

 private:
  bool is_member(TaskId task) const {
    return std::any_of(tasks_.begin(), tasks_.end(),
                       [task](const Task& t) { return t.id == task; });
  }

  void resolve() {
    const Domain& domain = tasks_.front().domain;
    const std::uint64_t n = domain.size();

    // Structurally invalid uploads are settled as malformed and excluded
    // from comparison.
    std::vector<const Task*> valid;
    for (const Task& task : tasks_) {
      if (uploads_.at(task.id).results.size() != n) {
        Verdict verdict;
        verdict.task = task.id;
        verdict.status = VerdictStatus::kMalformed;
        verdict.detail = "wrong result count";
        settle(std::move(verdict));
      } else {
        valid.push_back(&task);
      }
    }
    if (valid.empty()) {
      return;
    }

    // A replica is rejected iff it is wrong at any arbitrated position.
    std::vector<bool> wrong(valid.size(), false);
    std::size_t disagreements = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const Bytes& first = uploads_.at(valid.front()->id).results[i];
      bool all_equal = true;
      for (std::size_t v = 1; v < valid.size(); ++v) {
        if (!equal_bytes(uploads_.at(valid[v]->id).results[i], first)) {
          all_equal = false;
          break;
        }
      }
      if (all_equal) {
        continue;
      }
      ++disagreements;
      const Bytes truth =
          tasks_.front().f->evaluate(domain.input(LeafIndex{i}));
      for (std::size_t v = 0; v < valid.size(); ++v) {
        if (!equal_bytes(uploads_.at(valid[v]->id).results[i], truth)) {
          wrong[v] = true;
        }
      }
    }

    for (std::size_t v = 0; v < valid.size(); ++v) {
      Verdict verdict;
      verdict.task = valid[v]->id;
      verdict.status =
          wrong[v] ? VerdictStatus::kWrongResult : VerdictStatus::kAccepted;
      verdict.detail =
          concat("double-check: ", disagreements, " disagreeing positions");
      const bool accepted = verdict.status == VerdictStatus::kAccepted;
      settle(std::move(verdict));
      if (accepted) {
        report(valid[v]->id,
               screen_upload(*valid[v], uploads_.at(valid[v]->id)));
      }
    }
  }

  std::vector<Task> tasks_;
  std::map<TaskId, ResultsUpload> uploads_;
};

class NaiveSamplingScheme final : public VerificationScheme {
 public:
  std::string name() const override { return "naive-sampling"; }
  std::optional<SchemeKind> kind() const override {
    return SchemeKind::kNaiveSampling;
  }
  bool trusts_screener_reports() const override { return false; }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<UploadParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<NaiveSupervisorSession>(std::move(context));
  }
};

class DoubleCheckScheme final : public VerificationScheme {
 public:
  std::string name() const override { return "double-check"; }
  std::optional<SchemeKind> kind() const override {
    return SchemeKind::kDoubleCheck;
  }
  std::size_t replicas(const SchemeConfig& config) const override {
    check(config.double_check.replicas >= 2,
          "double-check needs >= 2 replicas");
    return config.double_check.replicas;
  }
  bool trusts_screener_reports() const override { return false; }

  std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const override {
    return std::make_unique<UploadParticipantSession>(std::move(context));
  }
  std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const override {
    return std::make_unique<DoubleCheckSupervisorSession>(std::move(context));
  }
};

}  // namespace

std::shared_ptr<const VerificationScheme> make_double_check_scheme() {
  return std::make_shared<DoubleCheckScheme>();
}

std::shared_ptr<const VerificationScheme> make_naive_sampling_scheme() {
  return std::make_shared<NaiveSamplingScheme>();
}

}  // namespace ugc
