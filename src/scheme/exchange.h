#pragma once

#include <memory>
#include <vector>

#include "scheme/session.h"

namespace ugc {

// Result of one in-process scheme exchange (run_scheme_exchange).
struct SchemeExchangeResult {
  // One verdict per task, in task order.
  std::vector<Verdict> verdicts;
  // The participants' honest screener reports, in task order.
  std::vector<ScreenerReport> reports;
  // Hits the supervisor session established itself (upload-based schemes).
  std::vector<TaskHits> supervisor_hits;
  // Genuine f evaluations across all participant sessions.
  std::uint64_t participant_evaluations = 0;
  // ResultVerifier invocations on the supervisor side.
  std::uint64_t results_verified = 0;

  bool all_accepted() const {
    for (const Verdict& verdict : verdicts) {
      if (!verdict.accepted()) {
        return false;
      }
    }
    return !verdicts.empty();
  }
};

// Runs one complete exchange fully in-process: opens one participant session
// per task (all driven by `policy`) and a supervisor session over the whole
// group, then relays SchemeMessages between them until every task has a
// verdict. The quickest way to drive a scheme without the grid — and the
// reference for what a Transport implementation must do with the session
// API (grid/transport.h): SimTransport and the TCP transport in src/net/
// both reduce to this relay loop, plus framing, routing, and timeouts.
//
// `verifier` may be null, in which case results are checked by recomputing
// through tasks[0].f. Throws ugc::Error if the exchange stalls before all
// verdicts are in (a scheme/session bug, not a protocol outcome).
SchemeExchangeResult run_scheme_exchange(
    const VerificationScheme& scheme, const std::vector<Task>& tasks,
    const SchemeConfig& config, std::shared_ptr<const HonestyPolicy> policy,
    std::shared_ptr<const ResultVerifier> verifier, std::uint64_t seed);

// Single-task convenience overload.
SchemeExchangeResult run_scheme_exchange(
    const VerificationScheme& scheme, const Task& task,
    const SchemeConfig& config, std::shared_ptr<const HonestyPolicy> policy,
    std::shared_ptr<const ResultVerifier> verifier = nullptr,
    std::uint64_t seed = 1);

// The many-participants pump: one *independent* exchange per task (its own
// participant and supervisor session pair), driven concurrently across up to
// `threads` workers (0 = hardware concurrency). This is the supervisor-side
// throughput path for grids where every participant holds its own subdomain
// — thousands of sessions verify in parallel.
//
// Deterministic and serial-identical by construction: per-task seeds are
// drawn from `seed` up front in task order, every session pair only touches
// its own state (policy / verifier / scheme are shared but const and
// thread-safe), and results merge in task order — so any thread count,
// including 1, produces byte-identical verdicts, reports, hits, and counters
// (pinned by golden test). Aggregate counters sum across tasks.
SchemeExchangeResult run_scheme_exchanges_parallel(
    const VerificationScheme& scheme, const std::vector<Task>& tasks,
    const SchemeConfig& config, std::shared_ptr<const HonestyPolicy> policy,
    std::shared_ptr<const ResultVerifier> verifier, std::uint64_t seed,
    unsigned threads = 0);

}  // namespace ugc
