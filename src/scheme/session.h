#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/cheating.h"
#include "core/scheme_config.h"
#include "core/task.h"
#include "scheme/message.h"

namespace ugc {

// ---------------------------------------------------------------------------
// The polymorphic scheme API. A VerificationScheme is a factory for paired
// session objects that drive one protocol run:
//
//   participant:  open_participant(ctx) → next_message() / on_message(msg)
//   supervisor:   open_supervisor(ctx)  → on_message(msg) / next_message()
//                                         … → Verdict (one per task)
//
// The grid nodes (and the in-process exchange helper) relay SchemeMessages
// between the two sides without understanding them; adding a scheme is one
// SchemeRegistry entry, not a cross-cutting edit. Nothing here knows what
// carries the messages either: the nodes pump sessions identically over the
// deterministic SimTransport and the real TCP transport (grid/transport.h,
// src/net/), so a scheme written against this API runs on a live grid
// (apps/gridd, apps/gridworker) unchanged.
// ---------------------------------------------------------------------------

// Everything a participant needs to open one session.
struct ParticipantContext {
  Task task;
  // Per-assignment parameters, as shipped in the TaskAssignment.
  SchemeConfig config;
  // Scheme-specific data the supervisor attached to the assignment (the
  // ringer scheme's planted images; empty for other schemes).
  std::vector<Bytes> assignment_images;
  std::shared_ptr<const HonestyPolicy> policy;  // null = honest
  // Pipelined schemes only: the first epoch still unverified on the
  // supervisor side. A reconnecting worker resumes computing there instead
  // of redoing its already-acknowledged epochs (EpochResume carries it).
  std::uint64_t resume_epoch = 0;
};

// Everything the supervisor needs to open one session. Covers one
// *assignment group*: schemes with replicas() == 1 get exactly one task;
// double-check gets `replicas` tasks sharing a domain.
struct SupervisorContext {
  std::vector<Task> tasks;
  SchemeConfig config;
  std::shared_ptr<const ResultVerifier> verifier;
  std::uint64_t seed = 1;  // drives sample selection / ringer planting
};

// Participant endpoint of one task's verification protocol. Opened with the
// task; produces its opening messages immediately (commitment, upload,
// proof, ...), then reacts to supervisor messages until finished.
class ParticipantSession {
 public:
  virtual ~ParticipantSession() = default;

  ParticipantSession() = default;
  ParticipantSession(const ParticipantSession&) = delete;
  ParticipantSession& operator=(const ParticipantSession&) = delete;

  // Feeds one message from the supervisor. Unexpected or malformed traffic
  // must be ignored, never thrown on — a real client drops junk.
  virtual void on_message(const SchemeMessage& message) = 0;

  // Drains the next outbound message, or nullopt when idle.
  virtual std::optional<SchemeMessage> next_message() = 0;

  // The honest screener report for this task. The node applies any
  // malicious ScreenerConduct before transmission.
  virtual ScreenerReport screener_report() const = 0;

  // Genuine f evaluations performed so far.
  virtual std::uint64_t honest_evaluations() const = 0;

  // True once the session expects no further supervisor input (one-shot
  // schemes finish right after their opening drain; interactive CBS stays
  // open until its verdict arrives).
  virtual bool finished() const = 0;
};

// Screener hits a supervisor session established itself (upload-based
// schemes screen the uploaded results; report-trusting schemes emit none).
struct TaskHits {
  TaskId task;
  std::vector<ScreenerHit> hits;
};

// Supervisor endpoint for one assignment group. Fed every scheme message
// addressed to one of its tasks; emits challenges, verdicts, and hits.
class SupervisorSession {
 public:
  virtual ~SupervisorSession() = default;

  SupervisorSession() = default;
  SupervisorSession(const SupervisorSession&) = delete;
  SupervisorSession& operator=(const SupervisorSession&) = delete;

  // Scheme-specific data to embed in `task`'s assignment (ringer images).
  virtual std::vector<Bytes> planted_images(TaskId task) const {
    (void)task;
    return {};
  }

  // Feeds one message attributed to `task`. Junk must be ignored.
  virtual void on_message(TaskId task, const SchemeMessage& message) = 0;

  // Drains the next outbound message, or nullopt when idle.
  virtual std::optional<SchemeOutbound> next_message() = 0;

  // Drains verdicts as they become available — each task's exactly once.
  virtual std::optional<Verdict> next_verdict() = 0;

  // Drains self-established screener hits (see TaskHits).
  virtual std::optional<TaskHits> next_hits() { return std::nullopt; }

  // Pipelined schemes only: the first epoch of `task` still unverified, so
  // a replacement attempt (reconnect, retry) can resume there rather than
  // from scratch. One-shot schemes — and settled tasks — return nullopt.
  virtual std::optional<std::uint64_t> resume_epoch(TaskId task) const {
    (void)task;
    return std::nullopt;
  }

  // ResultVerifier invocations so far.
  virtual std::uint64_t results_verified() const = 0;
};

// A pluggable verification scheme: names itself, describes its grouping and
// screener-trust properties, and opens sessions. Implementations must be
// stateless (sessions carry all per-run state) so one instance can serve
// every node in a process.
class VerificationScheme {
 public:
  virtual ~VerificationScheme() = default;

  VerificationScheme() = default;
  VerificationScheme(const VerificationScheme&) = delete;
  VerificationScheme& operator=(const VerificationScheme&) = delete;

  // Registry key, e.g. "cbs". Stable across versions.
  virtual std::string name() const = 0;

  // The wire enum value, for built-in schemes; custom schemes have none and
  // are addressed by name (SchemeConfig::name).
  virtual std::optional<SchemeKind> kind() const { return std::nullopt; }

  // Assignments per replica group. Double-check returns
  // config.double_check.replicas; everything else 1. May validate and throw
  // ugc::Error on nonsensical configs.
  virtual std::size_t replicas(const SchemeConfig& config) const {
    (void)config;
    return 1;
  }

  // Whether the supervisor should accept (validated) participant screener
  // reports. Upload-based schemes return false: they screen the uploaded
  // results themselves, which neutralizes §2.2's malicious conduct.
  virtual bool trusts_screener_reports() const { return true; }

  virtual std::unique_ptr<ParticipantSession> open_participant(
      ParticipantContext context) const = 0;
  virtual std::unique_ptr<SupervisorSession> open_supervisor(
      SupervisorContext context) const = 0;
};

// ---------------------------------------------------------------------------
// Outbox-buffered partial implementations the built-in adapters derive from:
// handlers push<SchemeMessage>/settle/report, the node drains.
// ---------------------------------------------------------------------------

class QueuedParticipantSession : public ParticipantSession {
 public:
  std::optional<SchemeMessage> next_message() override {
    if (outbox_.empty()) {
      return std::nullopt;
    }
    SchemeMessage message = std::move(outbox_.front());
    outbox_.pop_front();
    return message;
  }

 protected:
  void push(SchemeMessage message) { outbox_.push_back(std::move(message)); }

 private:
  std::deque<SchemeMessage> outbox_;
};

class QueuedSupervisorSession : public SupervisorSession {
 public:
  std::optional<SchemeOutbound> next_message() override {
    if (outbox_.empty()) {
      return std::nullopt;
    }
    SchemeOutbound out = std::move(outbox_.front());
    outbox_.pop_front();
    return out;
  }

  std::optional<Verdict> next_verdict() override {
    if (verdicts_.empty()) {
      return std::nullopt;
    }
    Verdict verdict = std::move(verdicts_.front());
    verdicts_.pop_front();
    return verdict;
  }

  std::optional<TaskHits> next_hits() override {
    if (hits_.empty()) {
      return std::nullopt;
    }
    TaskHits hits = std::move(hits_.front());
    hits_.pop_front();
    return hits;
  }

  std::uint64_t results_verified() const override { return results_verified_; }

 protected:
  void push(TaskId task, SchemeMessage message) {
    outbox_.push_back(SchemeOutbound{task, std::move(message)});
  }

  // Queues `verdict` unless its task already got one (first verdict wins —
  // duplicate or hostile late traffic cannot flip a decision).
  void settle(Verdict verdict) {
    if (settled_.insert(verdict.task).second) {
      verdicts_.push_back(std::move(verdict));
    }
  }

  bool settled(TaskId task) const { return settled_.contains(task); }

  void report(TaskId task, std::vector<ScreenerHit> hits) {
    hits_.push_back(TaskHits{task, std::move(hits)});
  }

  void count_verified(std::uint64_t n) { results_verified_ += n; }

 private:
  std::deque<SchemeOutbound> outbox_;
  std::deque<Verdict> verdicts_;
  std::deque<TaskHits> hits_;
  std::set<TaskId> settled_;
  std::uint64_t results_verified_ = 0;
};

}  // namespace ugc
