#include "scheme/registry.h"

#include "common/error.h"
#include "scheme/cbs_scheme.h"
#include "scheme/nicbs_scheme.h"
#include "scheme/pipelined_scheme.h"
#include "scheme/ringer_scheme.h"
#include "scheme/upload_schemes.h"

namespace ugc {

SchemeRegistry& SchemeRegistry::global() {
  static SchemeRegistry registry = [] {
    SchemeRegistry r;
    r.register_scheme(make_double_check_scheme());
    r.register_scheme(make_naive_sampling_scheme());
    r.register_scheme(make_cbs_scheme());
    r.register_scheme(make_nicbs_scheme());
    r.register_scheme(make_pipelined_scheme());
    r.register_scheme(make_ringer_scheme());
    return r;
  }();
  return registry;
}

void SchemeRegistry::register_scheme(
    std::shared_ptr<const VerificationScheme> scheme) {
  check(scheme != nullptr, "SchemeRegistry: scheme required");
  const std::string name = scheme->name();
  check(!name.empty(), "SchemeRegistry: scheme has an empty name");
  // Replacing a name displaces the old scheme entirely: drop any kind
  // routes still pointing at it so kind-based resolution cannot dispatch
  // to a replaced registration.
  if (const auto existing = by_name_.find(name); existing != by_name_.end()) {
    std::erase_if(by_kind_, [&existing](const auto& entry) {
      return entry.second == existing->second;
    });
  }
  if (const auto kind = scheme->kind()) {
    by_kind_[*kind] = scheme;
  }
  by_name_[name] = std::move(scheme);
}

bool SchemeRegistry::contains(const std::string& name) const {
  return by_name_.contains(name);
}

bool SchemeRegistry::contains(SchemeKind kind) const {
  return by_kind_.contains(kind);
}

const VerificationScheme& SchemeRegistry::by_name(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  check(it != by_name_.end(), "SchemeRegistry: unknown scheme '", name, "'");
  return *it->second;
}

std::shared_ptr<const VerificationScheme> SchemeRegistry::share(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  check(it != by_name_.end(), "SchemeRegistry: unknown scheme '", name, "'");
  return it->second;
}

const VerificationScheme& SchemeRegistry::by_kind(SchemeKind kind) const {
  const auto it = by_kind_.find(kind);
  check(it != by_kind_.end(), "SchemeRegistry: unknown scheme kind ",
        static_cast<int>(kind));
  return *it->second;
}

const VerificationScheme& SchemeRegistry::resolve(
    const SchemeConfig& config) const {
  return config.name.empty() ? by_kind(config.kind) : by_name(config.name);
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, scheme] : by_name_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace ugc
