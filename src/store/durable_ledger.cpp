#include "store/durable_ledger.h"

#include "common/error.h"

namespace ugc::store {

DurableReputationLedger::DurableReputationLedger(
    ReputationParams params, std::unique_ptr<ReputationStore> store)
    : params_(params), store_(std::move(store)) {
  check(store_ != nullptr, "DurableReputationLedger: null store");
  check(params_.prior_alpha > 0.0 && params_.prior_beta > 0.0,
        "DurableReputationLedger: Beta prior parameters must be positive");
}

void DurableReputationLedger::record(const WorkerId& id, bool accepted) {
  ReputationRecord record = store_->get(id).value_or(
      ReputationRecord{params_.prior_alpha, params_.prior_beta, 0});
  const bool was_banned = banned(record);
  (accepted ? record.alpha : record.beta) += 1.0;
  record.observations += 1;
  store_->put(id, record);
  if (!was_banned && banned(record)) {
    store_->sync();
  }
}

double DurableReputationLedger::trust(const WorkerId& id) const {
  const auto record = store_->get(id);
  if (!record) {
    return params_.prior_alpha / (params_.prior_alpha + params_.prior_beta);
  }
  return record->trust();
}

std::uint64_t DurableReputationLedger::observations(const WorkerId& id) const {
  const auto record = store_->get(id);
  return record ? record->observations : 0;
}

bool DurableReputationLedger::banned(const WorkerId& id) const {
  const auto record = store_->get(id);
  return record && banned(*record);
}

std::size_t DurableReputationLedger::banned_count() const {
  std::size_t count = 0;
  for (const auto& [id, record] : store_->snapshot()) {
    if (banned(record)) {
      ++count;
    }
  }
  return count;
}

bool DurableReputationLedger::banned(const ReputationRecord& record) const {
  return record.observations >= params_.min_observations &&
         record.trust() < params_.ban_threshold;
}

}  // namespace ugc::store
