#include "store/reputation_store.h"

#include <map>

namespace ugc::store {

namespace {

// The simulation/test backend: a plain ordered map, no durability.
class MemoryReputationStore final : public ReputationStore {
 public:
  std::optional<ReputationRecord> get(const WorkerId& id) const override {
    const auto it = records_.find(id);
    return it == records_.end() ? std::nullopt
                                : std::optional<ReputationRecord>(it->second);
  }

  void put(const WorkerId& id, const ReputationRecord& record) override {
    records_.insert_or_assign(id, record);
  }

  void sync() override {}

  std::vector<std::pair<WorkerId, ReputationRecord>> snapshot()
      const override {
    return {records_.begin(), records_.end()};
  }

  std::size_t size() const override { return records_.size(); }

 private:
  std::map<WorkerId, ReputationRecord> records_;
};

}  // namespace

std::unique_ptr<ReputationStore> make_memory_reputation_store() {
  return std::make_unique<MemoryReputationStore>();
}

}  // namespace ugc::store
