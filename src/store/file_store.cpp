// Crash-safe file backend for ReputationStore: an append-only log of record
// updates plus a periodically rewritten snapshot (see reputation_store.h for
// the on-disk contract). Durability discipline:
//
//   put()    one O(1) length-prefixed append; no fsync (batched)
//   sync()   fsync the log — the ledger's ban barrier
//   compact  snapshot.tmp -> fsync -> rename -> fsync(dir) -> truncate log
//   open     read snapshot, replay log, truncate away any torn tail
//
// A crash can therefore lose at most the un-synced suffix of recent updates
// — never a synced ban, and never the store's integrity: a half-appended
// entry is detected by its length prefix and dropped on the next open.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>

#include "common/error.h"
#include "store/reputation_store.h"
#include "wire/codec.h"

namespace ugc::store {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x53524755;  // "UGRS"
constexpr std::uint16_t kSnapshotVersion = 1;
// worker id (32 raw) + alpha f64 + beta f64 + observations u64.
constexpr std::size_t kRecordPayloadSize = kWorkerIdSize + 8 + 8 + 8;

[[noreturn]] void raise_io(const std::string& path, const char* op) {
  throw Error(concat("reputation store '", path, "': ", op, ": ",
                     std::strerror(errno)));
}

void write_all(int fd, const std::string& path, BytesView data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      raise_io(path, "write");
    }
    written += static_cast<std::size_t>(n);
  }
}

Bytes read_whole_file(int fd, const std::string& path) {
  Bytes out;
  std::uint8_t buffer[64 * 1024];
  if (::lseek(fd, 0, SEEK_SET) < 0) {
    raise_io(path, "lseek");
  }
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      raise_io(path, "read");
    }
    if (n == 0) {
      return out;
    }
    append(out, BytesView(buffer, static_cast<std::size_t>(n)));
  }
}

// mkdir -p: each prefix of `directory` in turn, tolerating what exists.
void ensure_directory(const std::string& directory) {
  check(!directory.empty(), "reputation store: empty state directory");
  std::string prefix;
  std::size_t start = 0;
  while (start <= directory.size()) {
    std::size_t slash = directory.find('/', start);
    if (slash == std::string::npos) {
      slash = directory.size();
    }
    prefix = directory.substr(0, slash);
    start = slash + 1;
    if (prefix.empty() || prefix == ".") {
      continue;
    }
    if (::mkdir(prefix.c_str(), 0755) < 0 && errno != EEXIST) {
      raise_io(prefix, "mkdir");
    }
  }
}

void serialize_record(WireWriter& w, const WorkerId& id,
                      const ReputationRecord& record) {
  w.raw(id.view());
  w.f64(record.alpha);
  w.f64(record.beta);
  w.u64(record.observations);
}

std::pair<WorkerId, ReputationRecord> parse_record(WireReader& r) {
  std::array<std::uint8_t, kWorkerIdSize> raw;
  for (std::uint8_t& byte : raw) {
    byte = r.u8();
  }
  ReputationRecord record;
  record.alpha = r.f64();
  record.beta = r.f64();
  record.observations = r.u64();
  return {WorkerId{raw}, record};
}

class FileReputationStore final : public ReputationStore {
 public:
  FileReputationStore(std::string directory, FileStoreOptions options)
      : directory_(std::move(directory)),
        options_(options),
        snapshot_path_(directory_ + "/reputation.snapshot"),
        log_path_(directory_ + "/reputation.log") {
    check(options_.compact_after_log_entries >= 1,
          "FileStoreOptions: compact_after_log_entries must be >= 1");
    ensure_directory(directory_);
    load_snapshot();
    open_and_replay_log();
  }

  ~FileReputationStore() override {
    if (log_fd_ >= 0) {
      ::close(log_fd_);
    }
  }

  std::optional<ReputationRecord> get(const WorkerId& id) const override {
    const auto it = records_.find(id);
    return it == records_.end() ? std::nullopt
                                : std::optional<ReputationRecord>(it->second);
  }

  void put(const WorkerId& id, const ReputationRecord& record) override {
    records_.insert_or_assign(id, record);
    WireWriter writer(std::move(entry_scratch_));
    writer.u32(kRecordPayloadSize);
    serialize_record(writer, id, record);
    entry_scratch_ = writer.take();
    write_all(log_fd_, log_path_, entry_scratch_);
    if (++log_entries_ >= options_.compact_after_log_entries) {
      compact();
    }
  }

  void sync() override {
    if (::fsync(log_fd_) < 0) {
      raise_io(log_path_, "fsync");
    }
  }

  std::vector<std::pair<WorkerId, ReputationRecord>> snapshot()
      const override {
    return {records_.begin(), records_.end()};
  }

  std::size_t size() const override { return records_.size(); }

 private:
  void load_snapshot() {
    const int fd = ::open(snapshot_path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      check(errno == ENOENT, "reputation store '", snapshot_path_, "': ",
            std::strerror(errno));
      return;  // first run: no snapshot yet
    }
    const Bytes data = read_whole_file(fd, snapshot_path_);
    ::close(fd);
    // Snapshots are written atomically (tmp + rename), so a malformed one
    // is real corruption, not a crash artifact: fail loudly.
    try {
      WireReader reader(data);
      check(reader.u32() == kSnapshotMagic, "bad snapshot magic");
      check(reader.u16() == kSnapshotVersion, "bad snapshot version");
      const std::uint64_t count = reader.varint();
      for (std::uint64_t i = 0; i < count; ++i) {
        records_.insert(parse_record(reader));
      }
      reader.expect_done();
    } catch (const Error& error) {
      throw Error(concat("reputation store '", snapshot_path_,
                         "' is corrupt: ", error.what()));
    }
  }

  void open_and_replay_log() {
    log_fd_ = ::open(log_path_.c_str(),
                     O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (log_fd_ < 0) {
      raise_io(log_path_, "open");
    }
    const Bytes data = read_whole_file(log_fd_, log_path_);
    std::size_t valid = 0;
    WireReader reader(data);
    while (reader.remaining() >= 4) {
      try {
        const std::uint32_t length = reader.u32();
        if (length != kRecordPayloadSize || reader.remaining() < length) {
          break;  // torn or foreign tail
        }
        const auto [id, record] = parse_record(reader);
        records_.insert_or_assign(id, record);
      } catch (const WireError&) {
        break;
      }
      valid = data.size() - reader.remaining();
      ++log_entries_;
    }
    if (valid < data.size()) {
      // A crash mid-append left a torn tail: drop it now so the poison
      // cannot accumulate (the lost suffix was never acknowledged by
      // sync(), so nothing durable is lost).
      if (::ftruncate(log_fd_, static_cast<off_t>(valid)) < 0) {
        raise_io(log_path_, "ftruncate");
      }
    }
  }

  void compact() {
    const std::string tmp_path = snapshot_path_ + ".tmp";
    WireWriter writer;
    writer.u32(kSnapshotMagic);
    writer.u16(kSnapshotVersion);
    writer.varint(records_.size());
    for (const auto& [id, record] : records_) {
      serialize_record(writer, id, record);
    }

    const int fd = ::open(tmp_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      raise_io(tmp_path, "open");
    }
    write_all(fd, tmp_path, writer.buffer());
    if (::fsync(fd) < 0) {
      ::close(fd);
      raise_io(tmp_path, "fsync");
    }
    ::close(fd);
    if (::rename(tmp_path.c_str(), snapshot_path_.c_str()) < 0) {
      raise_io(snapshot_path_, "rename");
    }
    sync_directory();
    // Every logged update is now in the snapshot: restart the log.
    if (::ftruncate(log_fd_, 0) < 0) {
      raise_io(log_path_, "ftruncate");
    }
    if (::fsync(log_fd_) < 0) {
      raise_io(log_path_, "fsync");
    }
    log_entries_ = 0;
  }

  // Makes the rename itself durable: fsync the containing directory.
  void sync_directory() {
    const int fd = ::open(directory_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      raise_io(directory_, "open");
    }
    if (::fsync(fd) < 0) {
      ::close(fd);
      raise_io(directory_, "fsync");
    }
    ::close(fd);
  }

  std::string directory_;
  FileStoreOptions options_;
  std::string snapshot_path_;
  std::string log_path_;
  int log_fd_ = -1;
  std::size_t log_entries_ = 0;
  std::map<WorkerId, ReputationRecord> records_;
  Bytes entry_scratch_;
};

}  // namespace

std::unique_ptr<ReputationStore> make_file_reputation_store(
    const std::string& directory, FileStoreOptions options) {
  return std::make_unique<FileReputationStore>(directory, options);
}

}  // namespace ugc::store
