#pragma once

// ---------------------------------------------------------------------------
// Layering note: src/store is the *persistence* layer. It knows about
// records, files, and durability barriers — never about schemes, verdicts,
// transports, or sockets. Its dependencies are common/, crypto (via
// auth/identity.h for WorkerId), and wire/codec.h (the record serializer);
// grid code and apps sit above it. Backends are swappable behind
// ReputationStore so simulations and tests run on the in-memory store while
// gridd runs the crash-safe file store — the same pattern a real deployment
// would use to slot in LMDB or RocksDB.
// ---------------------------------------------------------------------------
//
// What is stored: the ReputationLedger's Beta posterior per durable worker
// id (auth/identity.h). This is the asset a worker accumulates across runs
// and the thing a ban destroys — so it must survive gridd restarts, which
// is the whole point of this layer.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "auth/identity.h"

namespace ugc::store {

// The store's key is the durable identity from src/auth.
using auth::WorkerId;
using auth::kWorkerIdSize;

// One worker's Beta posterior over "its task is accepted", plus the
// observation count the ban rule gates on. Mirrors the in-simulation
// ReputationLedger's per-participant record, keyed durably instead of by
// transient participant index.
struct ReputationRecord {
  double alpha = 1.0;
  double beta = 1.0;
  std::uint64_t observations = 0;

  double trust() const { return alpha / (alpha + beta); }

  friend bool operator==(const ReputationRecord&, const ReputationRecord&) =
      default;
};

// Small embedded key-value store for reputation records. Implementations
// keep the full map in memory (worker populations are small next to the
// domains they compute); what differs is durability:
//
//   make_memory_reputation_store  — nothing survives the process; the
//     backend for simulations and tests.
//   make_file_reputation_store    — append-only log + snapshot compaction
//     in a state directory; survives crashes and restarts.
//
// Single-owner, no internal locking: gridd drives it from the event-loop
// thread, the same discipline as every other per-process structure here.
class ReputationStore {
 public:
  virtual ~ReputationStore() = default;

  ReputationStore() = default;
  ReputationStore(const ReputationStore&) = delete;
  ReputationStore& operator=(const ReputationStore&) = delete;

  virtual std::optional<ReputationRecord> get(const WorkerId& id) const = 0;

  // Inserts or overwrites. File backends append to the log here (an O(1)
  // write) and compact when the log outgrows its snapshot.
  virtual void put(const WorkerId& id, const ReputationRecord& record) = 0;

  // Durability barrier: returns only once every put() so far is on stable
  // storage (fsync for the file backend, no-op in memory). The ledger calls
  // this the moment a record transitions into the banned region — a ban
  // must never be lost to a crash.
  virtual void sync() = 0;

  // Every record, in worker-id order (load path + tests + status lines).
  virtual std::vector<std::pair<WorkerId, ReputationRecord>> snapshot()
      const = 0;

  virtual std::size_t size() const = 0;
};

std::unique_ptr<ReputationStore> make_memory_reputation_store();

struct FileStoreOptions {
  // Compact (rewrite the snapshot, truncate the log) once the log holds
  // this many entries; keeps replay-on-open O(population), not O(history).
  std::size_t compact_after_log_entries = 1024;
};

// Crash-safe file backend rooted at `directory` (created if missing):
//
//   reputation.snapshot   full map, rewritten atomically (tmp + rename)
//   reputation.log        append-only [len u32 | record] entries since the
//                         snapshot; a torn tail (crash mid-append) is
//                         detected on open, dropped, and truncated away
//
// Open cost is one snapshot read plus a log replay, bounded by compaction.
std::unique_ptr<ReputationStore> make_file_reputation_store(
    const std::string& directory, FileStoreOptions options = {});

}  // namespace ugc::store
