#pragma once

// The persistent counterpart of grid/reputation.h's ReputationLedger: the
// same Beta–Bernoulli posterior and ban rule, but keyed by durable worker
// id (auth/identity.h) and written through a ReputationStore so standing
// survives gridd restarts. The in-simulation ledger stays as is — it models
// one process's lifetime; this one models the grid's.

#include <cstdint>
#include <memory>

#include "store/reputation_store.h"

namespace ugc::store {

// Same knobs as ReputationLedger::Params (grid/reputation.h), duplicated
// here so the persistence layer does not pull in the simulation stack.
struct ReputationParams {
  // Beta prior over "this worker's task is accepted".
  double prior_alpha = 1.0;
  double prior_beta = 1.0;
  // Workers whose posterior-mean trust falls below this (after at least
  // min_observations verdicts) are refused at Hello.
  double ban_threshold = 0.5;
  std::uint64_t min_observations = 2;
};

class DurableReputationLedger {
 public:
  // Takes ownership of the backend. Existing records are served as-is —
  // the posterior lives in the store, the params only interpret it.
  DurableReputationLedger(ReputationParams params,
                          std::unique_ptr<ReputationStore> store);

  // Folds one verdict into the worker's posterior and writes it through.
  // The moment a record transitions into the banned region the store is
  // sync()ed: a ban is the one fact a crash must never roll back.
  void record(const WorkerId& id, bool accepted);

  // Posterior mean acceptance probability (the prior for unseen ids).
  double trust(const WorkerId& id) const;

  std::uint64_t observations(const WorkerId& id) const;

  bool banned(const WorkerId& id) const;

  std::size_t size() const { return store_->size(); }
  std::size_t banned_count() const;

  const ReputationStore& store() const { return *store_; }
  const ReputationParams& params() const { return params_; }

 private:
  bool banned(const ReputationRecord& record) const;

  ReputationParams params_;
  std::unique_ptr<ReputationStore> store_;
};

}  // namespace ugc::store
