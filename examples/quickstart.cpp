// Quickstart: one interactive CBS exchange, driven through the unified
// VerificationScheme session API.
//
// A supervisor hands a participant the task of evaluating f over a domain;
// the participant commits to all results with a Merkle root, the supervisor
// spot-checks m random samples against the commitment. An honest participant
// passes; a semi-honest cheater that computed only 40% of the work is
// caught.
//
// Every scheme in the library runs through the same three lines: resolve it
// in the SchemeRegistry, configure it, run the exchange. Swap "cbs" for
// "ni-cbs", "ringer", "naive-sampling" — or your own registered scheme —
// and nothing else changes.

#include <cstdio>

#include "core/analysis.h"
#include "scheme/exchange.h"
#include "scheme/registry.h"
#include "workloads/keysearch.h"

using namespace ugc;

namespace {

void describe(const char* who, const SchemeExchangeResult& result) {
  const Verdict& verdict = result.verdicts.front();
  std::printf("%-22s verdict=%-13s f-evals=%llu  hits=%zu\n", who,
              to_string(verdict.status),
              static_cast<unsigned long long>(result.participant_evaluations),
              result.reports.front().hits.size());
  if (!verdict.accepted()) {
    std::printf("%-22s   detail: %s\n", "", verdict.detail.c_str());
  }
  for (const ScreenerHit& hit : result.reports.front().hits) {
    std::printf("%-22s   screener: %s\n", "", hit.report.c_str());
  }
}

}  // namespace

int main() {
  // The task: crack a password hidden in a 4096-candidate key space.
  const KeySearchScenario scenario = make_keysearch_scenario(0, 4096, /*seed=*/42);
  const Task task =
      Task::make(TaskId{1}, Domain(0, 4096), scenario.f, scenario.screener);

  // Resolve the scheme by name — the same lookup the grid nodes perform for
  // every TaskAssignment.
  const VerificationScheme& cbs = SchemeRegistry::global().by_name("cbs");

  // m = 33 samples bounds the escape probability of a half-honest cheater
  // by (0.5)^33 ~ 1e-10 (Theorem 3 with q ~ 0).
  SchemeConfig config;
  config.cbs.sample_count = 33;

  std::printf("== Commitment-Based Sampling quickstart ==\n");
  std::printf("scheme=%s, domain n=%llu, samples m=%zu, hash=sha256\n\n",
              cbs.name().c_str(),
              static_cast<unsigned long long>(task.domain.size()),
              config.cbs.sample_count);

  describe("honest participant:",
           run_scheme_exchange(cbs, task, config, make_honest_policy()));

  describe("cheater (r=0.4):",
           run_scheme_exchange(cbs, task, config,
                               make_semi_honest_cheater({0.4, 0.0, 99})));

  // The same session API, with adaptive SPRT sampling switched on: the
  // supervisor now issues one sample at a time and stops when certain.
  SchemeConfig sprt_config = config;
  sprt_config.cbs.use_sprt = true;
  sprt_config.cbs.sprt.pass_prob_cheater = 0.5;
  describe("honest, sprt mode:",
           run_scheme_exchange(cbs, task, sprt_config, make_honest_policy()));

  std::printf(
      "\nTheorem 3: escape probability for r=0.4, q=0, m=33 is %.3g\n",
      cheat_success_probability(0.4, 0.0, 33));
  return 0;
}
