// Quickstart: one interactive CBS exchange, in-process.
//
// A supervisor hands a participant the task of evaluating f over a domain;
// the participant commits to all results with a Merkle root, the supervisor
// spot-checks m random samples against the commitment. An honest participant
// passes; a semi-honest cheater that computed only 40% of the work is
// caught.

#include <cstdio>

#include "core/analysis.h"
#include "core/cbs.h"
#include "workloads/keysearch.h"

using namespace ugc;

namespace {

CbsRunResult run_with(const Task& task, const CbsConfig& config,
                      std::shared_ptr<const HonestyPolicy> policy,
                      std::uint64_t seed) {
  auto verifier = std::make_shared<RecomputeVerifier>(task.f);
  return run_cbs_exchange(task, config, std::move(policy), verifier, seed);
}

void describe(const char* who, const CbsRunResult& result) {
  std::printf("%-22s verdict=%-13s f-evals=%llu  hits=%zu\n", who,
              to_string(result.verdict.status),
              static_cast<unsigned long long>(
                  result.participant_metrics.honest_evaluations),
              result.report.hits.size());
  if (!result.verdict.accepted()) {
    std::printf("%-22s   detail: %s\n", "", result.verdict.detail.c_str());
  }
  for (const ScreenerHit& hit : result.report.hits) {
    std::printf("%-22s   screener: %s\n", "", hit.report.c_str());
  }
}

}  // namespace

int main() {
  // The task: crack a password hidden in a 4096-candidate key space.
  const KeySearchScenario scenario = make_keysearch_scenario(0, 4096, /*seed=*/42);
  const Task task =
      Task::make(TaskId{1}, Domain(0, 4096), scenario.f, scenario.screener);

  // m = 33 samples bounds the escape probability of a half-honest cheater
  // by (0.5)^33 ~ 1e-10 (Theorem 3 with q ~ 0).
  CbsConfig config;
  config.sample_count = 33;

  std::printf("== Commitment-Based Sampling quickstart ==\n");
  std::printf("domain n=%llu, samples m=%zu, hash=sha256\n\n",
              static_cast<unsigned long long>(task.domain.size()),
              config.sample_count);

  describe("honest participant:",
           run_with(task, config, make_honest_policy(), 1));

  describe("cheater (r=0.4):",
           run_with(task, config,
                    make_semi_honest_cheater({0.4, 0.0, 99}), 2));

  std::printf(
      "\nTheorem 3: escape probability for r=0.4, q=0, m=33 is %.3g\n",
      cheat_success_probability(0.4, 0.0, 33));
  return 0;
}
