// Large tasks on small machines — the §3.3 storage tradeoff in practice.
//
// A participant takes a 2^20-input task. Storing the full Merkle tree costs
// ~2 M nodes; with the partial tree it keeps only the top levels and
// rebuilds one small subtree per challenged sample. This example commits the
// same task at several storage levels ℓ and reports memory vs proof-time vs
// the paper's rco = 2m/S prediction — all through the public CBS API.

#include <cstdio>

#include "common/stopwatch.h"
#include "core/analysis.h"
#include "core/cbs.h"
#include "merkle/tree.h"
#include "workloads/keysearch.h"

using namespace ugc;

int main() {
  constexpr std::uint64_t kN = 1 << 20;
  constexpr std::size_t kSamples = 33;

  const auto f = std::make_shared<KeySearchFunction>(/*work_factor=*/1, 13);
  const Task task = Task::make(TaskId{1}, Domain(0, kN), f);
  const auto verifier = std::make_shared<RecomputeVerifier>(f);

  std::printf("== one participant, n = 2^20, m = %zu samples ==\n\n",
              kSamples);
  std::printf("%-5s %14s %12s %12s %14s\n", "ell", "stored nodes",
              "commit s", "respond s", "rco (= 2m/S)");

  for (const unsigned ell : {0u, 4u, 8u, 12u}) {
    CbsConfig config;
    config.sample_count = kSamples;
    config.tree.storage_subtree_height = ell;

    Stopwatch commit_timer;
    CbsParticipant participant(task, config, make_honest_policy());
    CbsSupervisor supervisor(task, config, verifier, Rng(2));
    const Commitment commitment = participant.commit();
    const double commit_s = commit_timer.elapsed_seconds();

    const SampleChallenge challenge = supervisor.challenge(commitment);
    Stopwatch respond_timer;
    const ProofResponse response = participant.respond(challenge);
    const double respond_s = respond_timer.elapsed_seconds();

    const Verdict verdict = supervisor.verify(response);
    if (!verdict.accepted()) {
      std::printf("unexpected rejection: %s\n", verdict.detail.c_str());
      return 1;
    }

    const double stored =
        (ell == tree_height(kN))
            ? 1.0
            : static_cast<double>(
                  (std::uint64_t{2} << (tree_height(kN) - ell)) - 1);
    std::printf("%-5u %14.0f %12.2f %12.3f %14.6f\n", ell, stored, commit_s,
                respond_s, rco_from_levels(kSamples, tree_height(kN), ell));
  }

  std::printf(
      "\nthe commitment itself is O(n) work regardless of storage; only the "
      "respond step pays the 2^ell rebuild, and the paper's rco predicts "
      "exactly the measured recompute fraction (bench_fig3 validates the "
      "meter).\n");
  return 0;
}
