// SETI-style signal scanning through a GRACE broker — why NI-CBS exists.
//
// In brokered architectures (the paper's §4 motivation) the supervisor
// cannot talk to participants directly, so the interactive CBS challenge
// round has to be relayed. Non-interactive CBS derives the samples from the
// commitment itself: one self-contained proof, no challenge round. This
// example scans synthetic sky blocks for chirps under both schemes, behind
// a broker, and compares message counts.

#include <cstdio>

#include "grid/simulation.h"

using namespace ugc;

namespace {

GridRunResult run_scheme(const char* scheme_name) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 2048;  // 2048 sky blocks
  config.workload = "signal-scan";
  config.workload_seed = 31;
  config.participant_count = 4;
  config.use_broker = true;  // supervisor never sees the participants
  config.seed = 99;
  config.scheme.name = scheme_name;
  config.scheme.cbs.sample_count = 33;
  config.scheme.nicbs.sample_count = 33;
  config.cheaters = {{0, 0.6, 0.0, 0}};
  return run_grid_simulation(config);
}

}  // namespace

int main() {
  std::printf("== SETI-style scan behind a GRACE resource broker ==\n");
  std::printf("2048 sky blocks, 4 hidden participants, one cheater (r=0.6)\n\n");

  const GridRunResult cbs = run_scheme("cbs");
  const GridRunResult nicbs = run_scheme("ni-cbs");

  std::printf("%-28s %10s %10s\n", "", "CBS", "NI-CBS");
  std::printf("%-28s %10llu %10llu\n", "messages through broker",
              static_cast<unsigned long long>(cbs.network.total_messages),
              static_cast<unsigned long long>(nicbs.network.total_messages));
  std::printf("%-28s %10llu %10llu\n", "total bytes",
              static_cast<unsigned long long>(cbs.network.total_bytes),
              static_cast<unsigned long long>(nicbs.network.total_bytes));
  std::printf("%-28s %10zu %10zu\n", "cheater tasks rejected",
              cbs.cheater_tasks_rejected, nicbs.cheater_tasks_rejected);
  std::printf("%-28s %10zu %10zu\n", "signals confirmed", cbs.hits.size(),
              nicbs.hits.size());

  std::printf("\ndetected signals (NI-CBS run):\n");
  for (const ScreenerHit& hit : nicbs.hits) {
    std::printf("  %s\n", hit.report.c_str());
  }

  std::printf(
      "\nNI-CBS removed the challenge round: %llu fewer broker messages.\n",
      static_cast<unsigned long long>(cbs.network.total_messages -
                                      nicbs.network.total_messages));
  return 0;
}
