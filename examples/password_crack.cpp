// Password cracking on a simulated grid — the paper's running example.
//
// A supervisor splits a 2^16 key space across 8 participants. One of them
// cheats (computes half its share and guesses the rest). The example runs
// the same scenario under naive sampling (O(n) upload) and CBS
// (O(m log n) upload), showing that both catch the cheater but CBS moves
// orders of magnitude fewer bytes.

#include <cstdio>

#include "grid/simulation.h"
#include "workloads/registry.h"

using namespace ugc;

namespace {

// Schemes are addressed by their SchemeRegistry name — the grid nodes
// resolve the rest.
GridRunResult run_scheme(const char* scheme_name, bool verbose) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 1 << 16;
  config.workload = "keysearch";
  config.workload_seed = 7;
  config.participant_count = 8;
  config.seed = 2024;
  config.scheme.name = scheme_name;
  config.scheme.naive.sample_count = 33;
  config.scheme.cbs.sample_count = 33;
  config.cheaters = {{3, 0.5, 0.0, 0}};  // participant 3 does half the work

  const GridRunResult result = run_grid_simulation(config);
  if (verbose) {
    for (const ParticipantOutcome& outcome : result.outcomes) {
      std::printf("  participant %zu (%s): %s\n", outcome.participant_index,
                  outcome.was_cheater ? "cheater" : "honest ",
                  outcome.accepted ? "accepted" : "REJECTED");
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Cracking a password across an 8-node grid ==\n");
  std::printf("key space 2^16, participant 3 cheats with r=0.5\n\n");

  std::printf("--- naive sampling (participants upload ALL results) ---\n");
  const GridRunResult naive = run_scheme("naive-sampling", true);
  std::printf("  cheater caught: %s | upload traffic: %llu bytes\n\n",
              naive.cheater_tasks_rejected > 0 ? "yes" : "NO",
              static_cast<unsigned long long>(naive.network.total_bytes));

  std::printf("--- CBS (commit, then prove m=33 samples) ---\n");
  const GridRunResult cbs = run_scheme("cbs", true);
  std::printf("  cheater caught: %s | upload traffic: %llu bytes\n\n",
              cbs.cheater_tasks_rejected > 0 ? "yes" : "NO",
              static_cast<unsigned long long>(cbs.network.total_bytes));

  std::printf("CBS moved %.1fx fewer bytes than the naive upload.\n",
              static_cast<double>(naive.network.total_bytes) /
                  static_cast<double>(cbs.network.total_bytes));

  if (!cbs.hits.empty()) {
    std::printf("cracked: %s (reported by an accepted participant)\n",
                cbs.hits.front().report.c_str());
  }
  return 0;
}
