// Drug-candidate screening (the IBM smallpox-grid story): double-check
// replication vs CBS.
//
// Double-checking every task catches cheaters but burns every donated cycle
// twice and uploads every result twice. CBS verifies the same grid with one
// evaluation per input plus m-sample proofs. This example screens 4096
// synthetic molecules both ways and compares compute and traffic.

#include <cstdio>

#include "grid/simulation.h"

using namespace ugc;

namespace {

GridRunResult run_scheme(const char* scheme_name, std::size_t participants) {
  GridConfig config;
  config.domain_begin = 0;
  config.domain_end = 4096;  // molecule ids
  config.workload = "molecule-screen";
  config.workload_seed = 12;
  config.participant_count = participants;
  config.seed = 555;
  config.scheme.name = scheme_name;
  config.scheme.double_check.replicas = 2;
  config.scheme.cbs.sample_count = 33;
  config.cheaters = {{1, 0.7, 0.0, 0}};
  return run_grid_simulation(config);
}

}  // namespace

int main() {
  std::printf("== Screening 4096 molecules for binders ==\n");
  std::printf("8 donated machines, participant 1 cheats (r=0.7)\n\n");

  const GridRunResult dc = run_scheme("double-check", 8);
  const GridRunResult cbs = run_scheme("cbs", 8);

  std::printf("%-32s %14s %14s\n", "", "double-check", "CBS");
  std::printf("%-32s %14llu %14llu\n", "participant f evaluations",
              static_cast<unsigned long long>(dc.participant_evaluations),
              static_cast<unsigned long long>(cbs.participant_evaluations));
  std::printf("%-32s %14llu %14llu\n", "supervisor f evaluations",
              static_cast<unsigned long long>(dc.supervisor_evaluations),
              static_cast<unsigned long long>(cbs.supervisor_evaluations));
  std::printf("%-32s %14llu %14llu\n", "network bytes",
              static_cast<unsigned long long>(dc.network.total_bytes),
              static_cast<unsigned long long>(cbs.network.total_bytes));
  std::printf("%-32s %14zu %14zu\n", "cheater tasks rejected",
              dc.cheater_tasks_rejected, cbs.cheater_tasks_rejected);
  std::printf("%-32s %14zu %14zu\n", "strong binders confirmed",
              dc.hits.size(), cbs.hits.size());

  const double wasted =
      static_cast<double>(dc.participant_evaluations) -
      static_cast<double>(cbs.participant_evaluations);
  std::printf("\ndouble-check burned %.0f extra evaluations (%.0f%% of the "
              "useful work) to reach the same verdicts.\n",
              wasted, 100.0 * wasted / cbs.participant_evaluations);
  return 0;
}
