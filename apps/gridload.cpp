// gridload — the grid load-test harness: thousands of scripted workers
// against one supervisor, measured.
//
// The worker army runs in-process: every worker is a real authenticated
// protocol client (its own identity, its own ParticipantNode, honest or
// cheating per --cheaters), but all of them are driven by ONE event engine
// on one thread — a flat socket/FrameDecoder loop, not a thousand
// TcpTransports — so the harness can hold thousands of concurrent
// connections cheaply and the machine's capacity goes to the system under
// test.
//
// Two modes:
//
//   sweep (default) — hosts the supervisor side itself and runs the same
//     population against each transport configuration in turn: single-loop
//     poll() (the portable baseline), single-loop epoll, and multi-loop
//     epoll (--io-threads loops, sharded accept). Emits BENCH_grid.json
//     with per-config connect rate, exchanges/s, verdicts/s, p50/p99
//     verdict latency, and per-loop fd counts, plus the headline
//     multi-loop-epoll vs single-loop-poll ratio.
//   --connect host:port — drives the army against an external gridd (the
//     CI load-smoke path). No sweep; asserts the run completed.
//
// --smoke shrinks the population to a few hundred workers and enforces the
// CI gates: zero honest-worker accusations and a minimum exchanges/s floor.
//
// Exit status: 0 clean; 2 an honest worker was accused (the one outcome a
// load test must never produce); 3 incomplete (deadline, missing verdicts,
// or below the --min-exchanges floor); 1 runtime failure, 64 usage.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/cli.h"
#include "auth/handshake.h"
#include "auth/identity.h"
#include "common/stopwatch.h"
#include "core/cheating.h"
#include "grid/chaos.h"
#include "grid/participant_node.h"
#include "grid/supervisor_node.h"
#include "net/event_engine.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "wire/codec.h"
#include "wire/messages.h"

namespace {

using namespace ugc;

// Transport façade for one army connection: ParticipantNode sends through
// it, and the bytes land framed on that connection's write queue. Node ids
// are per-link fictions (the army's loop routes by socket, not id). The
// encode scratch is pooled: every link on the (single-threaded) army loop
// shares ONE buffer, so a 5000-worker army holds one encode-sized
// allocation instead of 5000 that each grow to the largest message ever
// sent on that link.
class WorkerLink final : public Transport {
 public:
  WorkerLink(Bytes& write_buffer, Bytes& encode_scratch)
      : write_buffer_(&write_buffer), scratch_(&encode_scratch) {}

  void send(GridNodeId, GridNodeId, const Message& message) override {
    encode_message_into(message, *scratch_);
    net::append_frame(*scratch_, *write_buffer_);
  }

  const NetworkStats& stats() const override { return stats_; }

  // Transport::assign_id is protected; the army borrows it here.
  static void bind(GridNode& node, GridNodeId id) { assign_id(node, id); }

 private:
  Bytes* write_buffer_;
  Bytes* scratch_;  // shared by all links; valid only on the army thread
  NetworkStats stats_;
};

// The scripted worker population: N concurrent authenticated protocol
// clients multiplexed over one event engine. run() blocks until the
// supervisor hangs up every connection (or the deadline passes), so in
// sweep mode it lives on its own thread.
class WorkerArmy {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t workers = 0;
    std::size_t cheaters = 0;  // the first `cheaters` workers cheat
    // Pipelined runs use mid-computation defectors instead of semi-honest
    // cheaters: each defects halfway through its own assignment, which is
    // the adversary epoch streaming exists to catch early.
    bool defectors = false;
    std::uint64_t seed = 1;
    // New connections opened per army loop round. Real volunteers arrive
    // independently — one accept wakeup each — so the default of 1 keeps
    // the supervisor-side arrival process realistic; large batches let a
    // poll() supervisor amortize its O(watched) scan over many accepts at
    // once, which no real population would grant it.
    std::size_t connect_batch = 1;
    std::uint64_t deadline_ms = 180000;
    net::EngineBackend engine = net::EngineBackend::kAuto;
  };

  explicit WorkerArmy(Config config) : config_(std::move(config)) {}

  void run() {
    auto engine = net::make_event_engine(config_.engine);
    engine_name_ = engine->name();  // resolved: what kAuto actually picked
    Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ull);
    Bytes read_scratch(64 * 1024);
    std::vector<net::ReadyEvent> ready;
    Stopwatch clock;
    const double deadline_s =
        static_cast<double>(config_.deadline_ms) / 1000.0;
    std::size_t created = 0;

    conns_.reserve(config_.workers);
    for (;;) {
      // Open the next batch; pacing the connects keeps the army responsive
      // to challenges already in flight instead of dumping one giant SYN
      // burst and going deaf.
      for (std::size_t i = 0;
           i < config_.connect_batch && created < config_.workers;
           ++i, ++created) {
        open_connection(*engine, created, rng);
        // Hand the core over after each connect: real volunteers are
        // independent processes, so the supervisor sees one arrival per
        // wakeup — a single hot army loop would instead queue a burst the
        // supervisor drains in one amortized scan, a pattern no real
        // population produces.
        std::this_thread::yield();
      }
      if (created == config_.workers && connect_seconds_ == 0.0) {
        connect_seconds_ = clock.elapsed_seconds();
      }
      if (created == config_.workers && live_ == 0) {
        break;
      }
      if (clock.elapsed_seconds() > deadline_s) {
        deadline_hit_ = true;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(progress_mutex_);
        progress_.created = created;
        progress_.live = live_;
        progress_.verdict_latencies = latencies_ms_.size();
        progress_.elapsed_s = clock.elapsed_seconds();
        progress_.states.resize(conns_.size());
        for (std::size_t i = 0; i < conns_.size(); ++i) {
          const Conn& conn = *conns_[i];
          progress_.states[i] = conn.done            ? 'd'
                                : conn.node == nullptr ? 'c'
                                : conn.verdicts_seen > 0 ? 'v'
                                                         : 'l';
        }
      }
      engine->wait(created < config_.workers ? 0 : 200, ready);
      const double now_ms = clock.elapsed_seconds() * 1000.0;
      for (const net::ReadyEvent& event : ready) {
        Conn& conn = *conns_[static_cast<std::size_t>(event.token)];
        if (conn.done) {
          continue;
        }
        if (event.readable || event.error) {
          service_read(*engine, event.token, conn, read_scratch, now_ms);
        }
        if (!conn.done && event.writable) {
          service_write(*engine, event.token, conn);
        }
        if (!conn.done) {
          sync_interest(*engine, event.token, conn);
        }
        // One worker serviced, one timeslice yielded — same reasoning as
        // the per-connect yield above: each worker's reply should reach
        // the supervisor as its own event, not as part of an army-sized
        // batch.
        std::this_thread::yield();
      }
    }
    // Whatever is still open at the deadline is abandoned.
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (!conns_[i]->done) {
        close_conn(*engine, static_cast<std::uint64_t>(i), *conns_[i],
                   /*allow_retry=*/false);
      }
    }
  }

  // Results — read after run() returns (join the thread first).
  const std::vector<double>& latencies_ms() const { return latencies_ms_; }
  std::size_t completed() const { return completed_; }
  std::size_t connect_failures() const { return connect_failures_; }
  bool deadline_hit() const { return deadline_hit_; }
  double connect_seconds() const { return connect_seconds_; }
  const std::string& resolved_engine() const { return engine_name_; }

  // Thread-safe mid-run snapshot for the runtime watchdog: the army loop
  // refreshes it once per round, so a hung run still shows its last known
  // per-worker state. `states` is one byte per worker: 'c' connecting /
  // failed, 'l' live without a verdict yet, 'v' live with >=1 verdict,
  // 'd' done (connection closed).
  struct Progress {
    std::size_t created = 0;
    std::size_t live = 0;
    std::size_t verdict_latencies = 0;
    double elapsed_s = 0.0;
    std::string states;
  };
  Progress progress() const {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    return progress_;
  }
  void dump_progress(FILE* out) const {
    const Progress p = progress();
    std::size_t live_idle = 0, live_verdict = 0, done = 0;
    std::string stuck;
    for (std::size_t i = 0; i < p.states.size(); ++i) {
      switch (p.states[i]) {
        case 'l':
          ++live_idle;
          if (stuck.size() < 120) {
            stuck += concat(stuck.empty() ? "" : ",", i);
          }
          break;
        case 'v': ++live_verdict; break;
        case 'd': ++done; break;
        default: break;
      }
    }
    std::fprintf(out,
                 "gridload: army created=%zu live=%zu done=%zu "
                 "awaiting_first_verdict=%zu live_with_verdict=%zu "
                 "latencies_recorded=%zu elapsed=%.1fs stuck_workers=[%s]\n",
                 p.created, p.live, done, live_idle, live_verdict,
                 p.verdict_latencies, p.elapsed_s, stuck.c_str());
  }

 private:
  struct Conn {
    net::Socket socket;
    net::FrameDecoder decoder;
    Bytes write_buffer;
    std::size_t write_offset = 0;
    net::Interest armed = net::Interest::kNone;
    std::optional<auth::WorkerIdentity> identity;
    std::string agent;
    std::unique_ptr<ParticipantNode> node;
    std::unique_ptr<WorkerLink> link;
    std::map<std::uint64_t, double> assign_ms;  // task -> assignment time
    std::size_t verdicts_seen = 0;
    int reconnects_left = 3;
    std::uint64_t seed = 0;
    // Defector cheaters pick their defection input from the assignment's
    // domain (its midpoint), so the policy is installed on first sight of
    // a TaskAssignment rather than at connect time.
    bool defect_pending = false;
    bool done = false;
  };

  void open_connection(net::EventEngine& engine, std::size_t index,
                       Rng& rng) {
    auto conn = std::make_unique<Conn>();
    const bool cheater = index < config_.cheaters;
    conn->agent = concat(cheater ? "cheater-" : "honest-", index);
    conn->identity = auth::WorkerIdentity::generate(rng);
    conn->seed = config_.seed + index;
    ParticipantNode::Options options;
    if (cheater && config_.defectors) {
      conn->defect_pending = true;  // policy installed on first assignment
    } else if (cheater) {
      options.policy =
          make_semi_honest_cheater({0.5, 0.0, config_.seed + index});
    }
    options.conduct_seed = config_.seed + index;
    conn->node = std::make_unique<ParticipantNode>(std::move(options));
    conn->link =
        std::make_unique<WorkerLink>(conn->write_buffer, encode_scratch_);
    WorkerLink::bind(*conn->node, GridNodeId{1});
    try {
      conn->socket = net::tcp_connect(config_.host, config_.port);
    } catch (const net::SocketError&) {
      ++connect_failures_;
      conn->done = true;
      conns_.push_back(std::move(conn));
      return;
    }
    engine.add(conn->socket.fd(), static_cast<std::uint64_t>(index),
               net::Interest::kRead);
    conn->armed = net::Interest::kRead;
    ++live_;
    conns_.push_back(std::move(conn));
  }

  void close_conn(net::EventEngine& engine, std::uint64_t token,
                  Conn& conn, bool allow_retry = true) {
    if (conn.done) {
      return;
    }
    engine.remove(conn.socket.fd());
    conn.socket.close();
    // A cut before the work resolved is a fault (chaos accept reset or
    // mid-stream disconnect), not the grid ending: come back under the
    // same identity, like gridworker does. The supervisor side re-aims
    // the slot at the fresh connection.
    if (allow_retry && conn.reconnects_left > 0 &&
        (conn.verdicts_seen == 0 || conn.node->active_tasks() > 0)) {
      --conn.reconnects_left;
      conn.node->on_crash();  // in-flight sessions died with the socket
      conn.decoder = net::FrameDecoder();
      conn.write_buffer.clear();
      conn.write_offset = 0;
      try {
        conn.socket = net::tcp_connect(config_.host, config_.port);
        engine.add(conn.socket.fd(), token, net::Interest::kRead);
        conn.armed = net::Interest::kRead;
        return;  // still live
      } catch (const net::SocketError&) {
        // Listener really is gone: fall through and finish the worker.
      }
    }
    conn.done = true;
    --live_;
    if (conn.verdicts_seen > 0) {
      ++completed_;
    }
  }

  void handle_frame(Conn& conn, BytesView payload, double now_ms) {
    Message message;
    try {
      message = decode_message(payload);
    } catch (const WireError&) {
      return;  // a load harness shrugs at undecodable frames
    }
    if (const auto* challenge = std::get_if<HelloChallenge>(&message)) {
      conn.link->send(
          GridNodeId{1}, GridNodeId{0},
          Message(auth::make_hello_proof(*conn.identity, challenge->nonce,
                                         kGridProtocol, conn.agent)));
      return;
    }
    if (const auto* assignment = std::get_if<TaskAssignment>(&message)) {
      conn.assign_ms.emplace(assignment->task.value, now_ms);
      if (conn.defect_pending) {
        // Rebuild the (still stateless) node around a defector that turns
        // dishonest at the midpoint of the domain it was just handed.
        ParticipantNode::Options options;
        options.policy = make_defector_cheater(
            {(assignment->domain_begin + assignment->domain_end) / 2, 0.0,
             conn.seed});
        options.conduct_seed = conn.seed;
        conn.node = std::make_unique<ParticipantNode>(std::move(options));
        WorkerLink::bind(*conn.node, GridNodeId{1});
        conn.defect_pending = false;
      }
    }
    conn.node->on_message(GridNodeId{0}, message, *conn.link);
    if (conn.node->verdicts().size() > conn.verdicts_seen) {
      for (const auto& [task, verdict] : conn.node->verdicts()) {
        const auto it = conn.assign_ms.find(task.value);
        if (it != conn.assign_ms.end()) {
          latencies_ms_.push_back(now_ms - it->second);
          conn.assign_ms.erase(it);  // each task's latency records once
        }
      }
      conn.verdicts_seen = conn.node->verdicts().size();
    }
  }

  void service_read(net::EventEngine& engine, std::uint64_t token,
                    Conn& conn, Bytes& scratch, double now_ms) {
    for (int round = 0; !conn.done && round < 16; ++round) {
      const net::IoResult result =
          net::read_some(conn.socket, std::span<std::uint8_t>(scratch));
      if (result.status == net::IoStatus::kOk) {
        try {
          conn.decoder.feed(BytesView(scratch.data(), result.bytes));
          while (const auto frame = conn.decoder.next()) {
            handle_frame(conn, *frame, now_ms);
          }
        } catch (const net::FrameError&) {
          close_conn(engine, token, conn);
          return;
        }
        continue;
      }
      if (result.status == net::IoStatus::kWouldBlock) {
        return;
      }
      close_conn(engine, token, conn);  // EOF: the supervisor hung up
      return;
    }
  }

  void service_write(net::EventEngine& engine, std::uint64_t token,
                     Conn& conn) {
    while (!conn.done && conn.write_offset < conn.write_buffer.size()) {
      const net::IoResult result = net::write_some(
          conn.socket,
          BytesView(conn.write_buffer).subspan(conn.write_offset));
      if (result.status == net::IoStatus::kOk) {
        if (result.bytes == 0) {
          return;
        }
        conn.write_offset += result.bytes;
        continue;
      }
      if (result.status == net::IoStatus::kWouldBlock) {
        return;
      }
      close_conn(engine, token, conn);
      return;
    }
    if (conn.write_offset > 0) {
      conn.write_buffer.erase(
          conn.write_buffer.begin(),
          conn.write_buffer.begin() +
              static_cast<std::ptrdiff_t>(conn.write_offset));
      conn.write_offset = 0;
    }
  }

  void sync_interest(net::EventEngine& engine, std::uint64_t token,
                     Conn& conn) {
    // Opportunistic flush first: most responses fit the socket buffer.
    service_write(engine, token, conn);
    if (conn.done) {
      return;
    }
    const net::Interest desired =
        conn.write_offset < conn.write_buffer.size()
            ? net::Interest::kReadWrite
            : net::Interest::kRead;
    if (desired != conn.armed) {
      engine.modify(conn.socket.fd(), token, desired);
      conn.armed = desired;
    }
  }

  Config config_;
  std::string engine_name_;
  Bytes encode_scratch_;  // pooled encode buffer, shared by every WorkerLink
  std::vector<std::unique_ptr<Conn>> conns_;
  std::size_t live_ = 0;
  std::size_t completed_ = 0;
  std::size_t connect_failures_ = 0;
  std::vector<double> latencies_ms_;
  double connect_seconds_ = 0.0;
  bool deadline_hit_ = false;
  mutable std::mutex progress_mutex_;
  Progress progress_;
};

// CI hang guard: a detached timer that waits out --max-runtime-s, dumps the
// current army's last-known per-worker state, and hard-exits non-zero.
// _Exit (not abort/exception) because the point is a *bounded* failure: no
// destructor or join can deadlock on whatever wedged the run.
class RuntimeWatchdog {
 public:
  void start(std::uint64_t limit_s) {
    if (limit_s == 0 || thread_.joinable()) {
      return;
    }
    thread_ = std::thread([this, limit_s] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, std::chrono::seconds(limit_s),
                       [this] { return done_; })) {
        return;
      }
      std::fprintf(stderr,
                   "gridload: WATCHDOG — still running after %" PRIu64
                   " s (%s); dumping state and exiting\n",
                   limit_s, context_.c_str());
      if (army_ != nullptr) {
        army_->dump_progress(stderr);
      }
      std::fflush(nullptr);
      std::_Exit(cli::kExitIncomplete);
    });
  }

  // Points the watchdog at the run currently in flight.
  void observe(const WorkerArmy* army, std::string context) {
    std::lock_guard<std::mutex> lock(mutex_);
    army_ = army;
    context_ = std::move(context);
  }

  ~RuntimeWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  const WorkerArmy* army_ = nullptr;
  std::string context_;
  std::thread thread_;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct SweepConfig {
  net::EngineBackend engine;
  unsigned io_threads;
  std::string chaos_level = "off";  // make_chaos_plan level for this run
  bool adaptive_idle = false;
};

struct RunResult {
  std::string engine;            // resolved: what actually got constructed
  std::string engine_requested;  // what the sweep asked for (kAuto may differ)
  unsigned io_loops = 1;
  double connect_s = 0, protocol_s = 0, total_s = 0;
  double connects_per_s = 0, exchanges_per_s = 0, verdicts_per_s = 0;
  std::uint64_t messages = 0;
  std::size_t verdicts = 0, accepted = 0, rejected = 0, aborted = 0;
  std::size_t honest_accusations = 0;
  double p50_ms = 0, p99_ms = 0;
  std::vector<std::size_t> peers_per_loop;
  std::size_t write_queue_hwm = 0;
  // Syscall economy of the supervisor's write side: how many frames each
  // vectored write carried on average (the batching headline).
  std::uint64_t read_calls = 0, write_calls = 0;
  double frames_per_write_mean = 0.0;
  std::uint64_t refused = 0, undecodable = 0, truncated = 0;
  std::string chaos = "off";
  std::uint64_t frames_shed = 0, peers_evicted = 0;
  std::uint64_t chaos_disconnects = 0, chaos_resets = 0;
  std::uint64_t idle_timeout_ms = 0;
  std::size_t connect_failures = 0;
  bool deadline_hit = false;
  // Pipelined verification: epochs elapsed before each cheater was caught
  // (catch epoch + 1, summed over rejected tasks with a failed sample) vs
  // the one-shot cost of running every task's full epoch count first.
  std::uint64_t pipeline_epochs = 1;
  std::uint64_t wasted_epochs = 0;
  std::uint64_t one_shot_epochs = 0;
};

// One full grid run: hosts the supervisor transport under `config`, throws
// the army at it, and scores the outcome. All `workers` connect and
// authenticate; tasks are assigned to the first `active` of them — a
// standing volunteer population keeps far more connections open than it
// has work in flight at any moment, and that watched-but-idle majority is
// the regime readiness-driven dispatch exists for.
RunResult run_grid(const cli::Flags& flags, std::size_t workers,
                   std::size_t active, std::size_t cheaters,
                   SweepConfig config, RuntimeWatchdog* watchdog = nullptr) {
  net::TcpTransportOptions options;
  options.io_threads = config.io_threads;
  options.engine = config.engine;
  options.quiescence_timeout_ms = flags.u64("idle-timeout-ms");
  options.shed_watermark = flags.u64("shed-watermark");
  options.evict_stalled_after_ms = flags.u64("evict-after-ms");
  if (config.chaos_level != "off") {
    const std::uint64_t chaos_seed = flags.u64("chaos-seed");
    options.chaos = make_chaos_plan(
        config.chaos_level, chaos_seed != 0 ? chaos_seed : flags.u64("seed"));
  }
  if (config.adaptive_idle) {
    options.quiescence.adaptive = true;
  }
  net::TcpTransport transport(options);
  transport.require_auth({});  // no ban list: a load test bans nobody
  transport.listen("127.0.0.1", 0);

  // Identity-keyed registration: an army worker that was cut (chaos accept
  // reset / mid-stream disconnect) reconnects under the same durable id,
  // and its slot must re-aim at the fresh connection instead of counting
  // twice — exactly the gridd reconnect path.
  std::vector<GridNodeId> slots;
  std::map<auth::WorkerId, std::size_t> slot_of;
  std::map<std::uint32_t, std::string> agents;
  SupervisorNode* supervisor_ptr = nullptr;
  transport.on_peer_authenticated = [&](GridNodeId peer,
                                        const auth::AuthInfo& info) {
    agents[peer.value] = info.agent;
    if (const auto it = slot_of.find(info.worker_id); it != slot_of.end()) {
      slots[it->second] = peer;
      // Idle workers (slot >= active) hold no supervisor assignment slot.
      if (supervisor_ptr != nullptr && it->second < active) {
        supervisor_ptr->replace_slot(it->second, peer);
      }
      return;
    }
    slot_of[info.worker_id] = slots.size();
    slots.push_back(peer);
  };

  WorkerArmy::Config army_config;
  army_config.port = transport.port();
  army_config.workers = workers;
  army_config.cheaters = cheaters;
  army_config.defectors = flags.u64("epochs") > 1;
  army_config.seed = flags.u64("seed");
  army_config.deadline_ms = flags.u64("deadline-ms");
  WorkerArmy army(army_config);
  if (watchdog != nullptr) {
    watchdog->observe(&army, concat("engine=", net::to_string(config.engine),
                                    " io_threads=", config.io_threads,
                                    " chaos=", config.chaos_level));
  }
  std::thread army_thread([&army] { army.run(); });

  RunResult result;
  result.chaos = config.chaos_level;
  try {
    Stopwatch clock;
    const double registration_deadline_s =
        static_cast<double>(flags.u64("deadline-ms")) / 1000.0;
    transport.run([&] {
      return slots.size() >= workers ||
             clock.elapsed_seconds() > registration_deadline_s;
    });
    check(slots.size() >= workers, "gridload: only ", slots.size(), "/",
          workers, " workers registered before the deadline");
    result.connect_s = clock.elapsed_seconds();

    std::vector<GridNodeId> active_slots(
        slots.begin(),
        slots.begin() + static_cast<std::ptrdiff_t>(active));

    SupervisorNode::Plan plan;
    plan.domain = Domain(0, active * flags.u64("points"));
    plan.workload = flags.str("workload");
    plan.workload_seed = flags.u64("seed");
    plan.scheme.name = flags.str("scheme");
    if (const std::uint64_t samples = flags.u64("samples"); samples > 0) {
      plan.scheme.cbs.sample_count = samples;
      plan.scheme.nicbs.sample_count = samples;
      plan.scheme.naive.sample_count = samples;
    }
    const std::uint64_t epochs = flags.u64("epochs");
    plan.scheme.pipeline.epochs = epochs;
    if (const std::uint64_t samples = flags.u64("samples"); samples > 0) {
      plan.scheme.pipeline.samples_per_epoch = samples;
    }
    // Epochs in flight before the participant must see an ack. 1 is strict
    // lock-step (one frame per write, nothing to coalesce); >1 lets workers
    // stream commitment bursts, which is what the supervisor's vectored
    // write path batches — the frames_per_write column only moves off 1.0
    // with inflight headroom.
    plan.scheme.pipeline.max_inflight =
        std::max<std::size_t>(1, flags.u64("epoch-inflight"));
    plan.seed = flags.u64("seed");
    plan.max_task_retries = flags.u64("max-retries");

    SupervisorNode supervisor(plan, active_slots);
    supervisor_ptr = &supervisor;
    transport.add_local(supervisor);
    Stopwatch protocol_clock;
    supervisor.start(transport);
    transport.run([&] { return supervisor.done(); });
    result.protocol_s = protocol_clock.elapsed_seconds();
    result.messages = transport.stats().total_messages;

    const net::TcpIoStats io = transport.io_stats();
    result.engine = io.engine;
    result.engine_requested = net::to_string(config.engine);
    result.io_loops = io.io_loops;
    result.peers_per_loop = io.peers_per_loop;
    result.write_queue_hwm = io.write_queue_hwm;
    result.read_calls = io.read_calls;
    result.write_calls = io.write_calls;
    result.frames_per_write_mean = io.frames_per_write_mean;
    result.refused = io.handshakes_refused;
    result.undecodable = io.frames_undecodable;
    result.truncated = io.streams_truncated;
    result.frames_shed = io.frames_shed;
    result.peers_evicted = io.peers_evicted;
    result.chaos_disconnects = io.chaos_disconnects;
    result.chaos_resets = io.chaos_accept_resets;
    result.idle_timeout_ms = io.quiescence_timeout_ms;
    transport.close_all();

    result.pipeline_epochs = std::max<std::uint64_t>(epochs, 1);
    // Every task's domain is `points` wide; replicate the scheme's epoch
    // split so a rejected task's failed sample maps back to a catch epoch.
    const std::vector<Domain> epoch_chunks =
        Domain(0, flags.u64("points")).split(std::min<std::uint64_t>(
            result.pipeline_epochs, flags.u64("points")));
    for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
      ++result.verdicts;
      if (outcome.verdict.status == VerdictStatus::kAborted) {
        ++result.aborted;
        continue;
      }
      if (outcome.verdict.accepted()) {
        ++result.accepted;
      } else {
        ++result.rejected;
        const auto it = agents.find(outcome.peer.value);
        if (it != agents.end() && it->second.starts_with("honest")) {
          ++result.honest_accusations;
        }
        // One-shot verification only accuses after all epochs are computed;
        // pipelined accuses at the epoch holding the failed sample.
        result.one_shot_epochs += epoch_chunks.size();
        if (outcome.verdict.failed_sample.has_value()) {
          const std::uint64_t sample = outcome.verdict.failed_sample->value;
          for (std::size_t e = 0; e < epoch_chunks.size(); ++e) {
            if (sample < epoch_chunks[e].end()) {  // chunks start at 0
              result.wasted_epochs += e + 1;
              break;
            }
          }
        } else {
          result.wasted_epochs += epoch_chunks.size();
        }
      }
    }
  } catch (...) {
    transport.close_all(0);
    army_thread.join();
    throw;
  }
  army_thread.join();

  result.connect_failures = army.connect_failures();
  result.deadline_hit = army.deadline_hit();
  std::vector<double> latencies = army.latencies_ms();
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = percentile(latencies, 0.50);
  result.p99_ms = percentile(latencies, 0.99);
  result.connects_per_s =
      result.connect_s > 0 ? static_cast<double>(workers) / result.connect_s
                           : 0.0;
  // Sustained throughput over the whole session: registering a worker is
  // an exchange too (challenge + proof), and the accept/handshake storm is
  // exactly where readiness-driven dispatch earns its keep — a poll()
  // supervisor rescans every watched fd per accept, O(n^2) across a
  // population ramp. connect_s and protocol_s stay reported separately so
  // the phases can be compared on their own.
  result.total_s = result.connect_s + result.protocol_s;
  const double exchanges =
      static_cast<double>(result.messages) + 2.0 * static_cast<double>(workers);
  result.exchanges_per_s =
      result.total_s > 0 ? exchanges / result.total_s : 0.0;
  result.verdicts_per_s =
      result.total_s > 0 ? static_cast<double>(result.verdicts) / result.total_s
                         : 0.0;
  return result;
}

void print_result(const RunResult& result) {
  std::printf("gridload: engine=%s(requested %s) io_loops=%u chaos=%s "
              "connect=%.2fs (%.0f/s) "
              "protocol=%.2fs total=%.2fs exchanges/s=%.0f verdicts=%zu (%.0f/s) "
              "accepted=%zu rejected=%zu aborted=%zu honest_accusations=%zu "
              "p50=%.1fms p99=%.1fms hwm=%zu shed=%" PRIu64 " evicted=%" PRIu64
              " idle_timeout_ms=%" PRIu64 "\n",
              result.engine.c_str(), result.engine_requested.c_str(),
              result.io_loops, result.chaos.c_str(),
              result.connect_s,
              result.connects_per_s, result.protocol_s, result.total_s,
              result.exchanges_per_s, result.verdicts, result.verdicts_per_s,
              result.accepted, result.rejected, result.aborted,
              result.honest_accusations, result.p50_ms, result.p99_ms,
              result.write_queue_hwm, result.frames_shed, result.peers_evicted,
              result.idle_timeout_ms);
  std::printf("gridload:   peers_per_loop=[");
  for (std::size_t i = 0; i < result.peers_per_loop.size(); ++i) {
    std::printf("%s%zu", i == 0 ? "" : ",", result.peers_per_loop[i]);
  }
  std::printf("] read_calls=%" PRIu64 " write_calls=%" PRIu64
              " frames_per_write=%.2f refused=%" PRIu64 " undecodable=%" PRIu64
              " truncated=%" PRIu64 " connect_failures=%zu%s\n",
              result.read_calls, result.write_calls,
              result.frames_per_write_mean, result.refused, result.undecodable,
              result.truncated, result.connect_failures,
              result.deadline_hit ? " DEADLINE-HIT" : "");
  if (result.pipeline_epochs > 1) {
    std::printf("gridload:   pipelined epochs=%" PRIu64
                " wasted_epochs=%" PRIu64 " one_shot_epochs=%" PRIu64 "\n",
                result.pipeline_epochs, result.wasted_epochs,
                result.one_shot_epochs);
  }
  std::fflush(stdout);
}

void emit_json_run(FILE* json, const RunResult& result, bool first) {
  std::fprintf(
      json,
      "%s    {\"engine\": \"%s\", \"engine_requested\": \"%s\", "
      "\"io_threads\": %u, \"connect_s\": %.3f, "
      "\"connects_per_sec\": %.1f, \"protocol_s\": %.3f, \"total_s\": %.3f, "
      "\"exchanges_per_sec\": %.1f, \"messages\": %" PRIu64 ", "
      "\"verdicts\": %zu, \"verdicts_per_sec\": %.1f, \"accepted\": %zu, "
      "\"rejected\": %zu, \"aborted\": %zu, \"honest_accusations\": %zu, "
      "\"p50_verdict_ms\": %.2f, \"p99_verdict_ms\": %.2f, "
      "\"peers_per_loop\": [",
      first ? "" : ",\n", result.engine.c_str(),
      result.engine_requested.c_str(), result.io_loops,
      result.connect_s, result.connects_per_s, result.protocol_s,
      result.total_s, result.exchanges_per_s, result.messages, result.verdicts,
      result.verdicts_per_s, result.accepted, result.rejected, result.aborted,
      result.honest_accusations, result.p50_ms, result.p99_ms);
  for (std::size_t i = 0; i < result.peers_per_loop.size(); ++i) {
    std::fprintf(json, "%s%zu", i == 0 ? "" : ", ",
                 result.peers_per_loop[i]);
  }
  std::fprintf(json,
               "], \"write_queue_hwm\": %zu, \"read_calls\": %" PRIu64
               ", \"write_calls\": %" PRIu64
               ", \"frames_per_write_mean\": %.3f"
               ", \"handshakes_refused\": %" PRIu64
               ", \"frames_undecodable\": %" PRIu64
               ", \"streams_truncated\": %" PRIu64
               ", \"chaos\": \"%s\", \"frames_shed\": %" PRIu64
               ", \"peers_evicted\": %" PRIu64
               ", \"chaos_disconnects\": %" PRIu64
               ", \"chaos_accept_resets\": %" PRIu64
               ", \"idle_timeout_ms\": %" PRIu64
               ", \"pipeline_epochs\": %" PRIu64
               ", \"wasted_epochs\": %" PRIu64
               ", \"one_shot_epochs\": %" PRIu64 "}",
               result.write_queue_hwm, result.read_calls, result.write_calls,
               result.frames_per_write_mean,
               result.refused, result.undecodable,
               result.truncated, result.chaos.c_str(), result.frames_shed,
               result.peers_evicted, result.chaos_disconnects,
               result.chaos_resets, result.idle_timeout_ms,
               result.pipeline_epochs, result.wasted_epochs,
               result.one_shot_epochs);
}

int run_gridload(const cli::Flags& flags, bool smoke) {
  std::size_t workers = flags.u64("workers");
  if (smoke) {
    workers = std::min<std::size_t>(workers, 300);
  }
  // --active 0 means "everyone works" — otherwise only the first --active
  // registered workers get tasks and the rest hold idle connections open,
  // like any standing volunteer population.
  std::size_t active = flags.u64("active");
  active = active == 0 ? workers : std::min(active, workers);
  std::size_t cheaters;
  if (flags.str("cheaters") == "auto") {
    cheaters = active / 20;
  } else {
    cheaters = flags.u64("cheaters");
  }
  check(cheaters <= active, "gridload: --cheaters ", cheaters,
        " exceeds the active worker count ", active);
  double min_exchanges = flags.f64("min-exchanges-per-s");
  if (smoke && min_exchanges == 0.0) {
    min_exchanges = 50.0;  // the CI floor: catastrophic regressions only
  }
  const bool chaos_mode = flags.u64("chaos") != 0;

  // A load test that hangs is worse than one that fails: the watchdog
  // bounds the whole process and dumps the army's last-known per-worker
  // state instead of letting CI time the job out with nothing to show.
  RuntimeWatchdog watchdog;
  watchdog.start(flags.u64("max-runtime-s"));

  // External mode: army only, against a running gridd.
  if (!flags.str("connect").empty()) {
    const auto [host, port] = cli::parse_endpoint(flags.str("connect"));
    WorkerArmy::Config config;
    config.host = host;
    config.port = port;
    config.workers = workers;
    config.cheaters = cheaters;
    config.seed = flags.u64("seed");
    config.deadline_ms = flags.u64("deadline-ms");
    config.engine = net::parse_engine_backend(flags.str("engine"));
    WorkerArmy army(config);
    watchdog.observe(&army, concat("external ", host, ":", port));
    Stopwatch clock;
    army.run();
    const double total_s = clock.elapsed_seconds();
    std::vector<double> latencies = army.latencies_ms();
    std::sort(latencies.begin(), latencies.end());
    std::printf("gridload: external %s:%u engine=%s workers=%zu cheaters=%zu "
                "completed=%zu connect_failures=%zu total=%.2fs "
                "verdict_latencies=%zu p50=%.1fms p99=%.1fms%s\n",
                host.c_str(), port, army.resolved_engine().c_str(), workers,
                cheaters, army.completed(),
                army.connect_failures(), total_s, latencies.size(),
                percentile(latencies, 0.50), percentile(latencies, 0.99),
                army.deadline_hit() ? " DEADLINE-HIT" : "");
    std::fflush(stdout);
    if (army.deadline_hit() || army.connect_failures() > 0 ||
        army.completed() + cheaters < workers) {
      // Cheater connections may be cut early (accused); honest ones must
      // all complete with a verdict.
      return cli::kExitIncomplete;
    }
    return cli::kExitOk;
  }

  // Sweep mode: same population, one transport configuration at a time.
  // --chaos swaps the axis: instead of comparing engines on a clean wire,
  // it holds the engine fixed (epoll x1 where available, adaptive
  // quiescence on) and degrades the network — off / light / heavy — to
  // record the verdict-latency degradation curve.
  const unsigned io_threads =
      std::max<unsigned>(2, static_cast<unsigned>(flags.u64("io-threads")));
  std::vector<SweepConfig> sweep;
  if (chaos_mode) {
    const net::EngineBackend engine = net::epoll_supported()
                                          ? net::EngineBackend::kEpoll
                                          : net::EngineBackend::kPoll;
    for (const char* level : {"off", "light", "heavy"}) {
      sweep.push_back({engine, 1, level, true});
    }
  } else {
    sweep.push_back({net::EngineBackend::kPoll, 1});
    if (net::epoll_supported()) {
      sweep.push_back({net::EngineBackend::kEpoll, 1});
      sweep.push_back({net::EngineBackend::kEpoll, io_threads});
    }
    // The full engine matrix: uring joins wherever the kernel has it, in
    // both loop shapes, so BENCH_grid.json carries a like-for-like
    // uring-vs-epoll comparison on the same population.
    if (net::uring_supported()) {
      sweep.push_back({net::EngineBackend::kUring, 1});
      sweep.push_back({net::EngineBackend::kUring, io_threads});
    }
  }

  std::printf("gridload: sweep workers=%zu active=%zu cheaters=%zu points=%" PRIu64
              " samples=%" PRIu64 " scheme=%s workload=%s%s%s\n",
              workers, active, cheaters, flags.u64("points"),
              flags.u64("samples"),
              flags.str("scheme").c_str(), flags.str("workload").c_str(),
              chaos_mode ? "  [chaos]" : "", smoke ? "  [smoke]" : "");
  std::fflush(stdout);

  // Unrecorded warm-up: the first grid of the process pays page faults and
  // allocator growth that would otherwise bias whichever config runs first.
  const std::size_t warm = std::min<std::size_t>(workers, 100);
  run_grid(flags, warm, warm, 0, sweep.front(), &watchdog);

  std::vector<RunResult> results;
  for (const SweepConfig& config : sweep) {
    results.push_back(
        run_grid(flags, workers, active, cheaters, config, &watchdog));
    print_result(results.back());
  }

  // Headline ratios: the engine sweep compares throughput (multi-loop epoll
  // vs single-loop poll, plus single-loop uring vs single-loop epoll — the
  // pure syscall-economy comparison); the chaos sweep compares p99 verdict
  // latency (heavy vs clean) — how much WAN hostility stretches the tail
  // while verdicts stay correct.
  const auto find_run = [&](const char* engine,
                            bool multi_loop) -> const RunResult* {
    for (const RunResult& result : results) {
      if (result.engine == engine &&
          (multi_loop ? result.io_loops > 1 : result.io_loops == 1)) {
        return &result;
      }
    }
    return nullptr;
  };
  const RunResult& baseline = results.front();  // poll x1 / chaos off
  const RunResult* multi_epoll =
      chaos_mode ? nullptr : find_run("epoll", true);
  const RunResult& contender = chaos_mode
                                   ? results.back()  // chaos heavy
                                   : (multi_epoll != nullptr ? *multi_epoll
                                                             : results.back());
  const double ratio =
      chaos_mode ? (baseline.p99_ms > 0 ? contender.p99_ms / baseline.p99_ms
                                        : 0.0)
                 : (baseline.exchanges_per_s > 0
                        ? contender.exchanges_per_s / baseline.exchanges_per_s
                        : 0.0);
  const RunResult* epoll_single = chaos_mode ? nullptr : find_run("epoll", false);
  const RunResult* uring_single = chaos_mode ? nullptr : find_run("uring", false);
  const bool have_uring_ratio =
      epoll_single != nullptr && uring_single != nullptr &&
      epoll_single->exchanges_per_s > 0;
  const double uring_vs_epoll =
      have_uring_ratio
          ? uring_single->exchanges_per_s / epoll_single->exchanges_per_s
          : 0.0;

  const std::string out_path = flags.str("out");
  FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "gridload: cannot open %s for writing\n",
                 out_path.c_str());
    return cli::kExitError;
  }
  std::fprintf(json,
               "{\n  \"smoke\": %s,\n  \"chaos\": %s,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"workers\": %zu,\n  \"active_workers\": %zu,\n"
               "  \"cheaters\": %zu,\n"
               "  \"points_per_worker\": %" PRIu64 ",\n"
               "  \"samples\": %" PRIu64 ",\n  \"epochs\": %" PRIu64 ",\n"
               "  \"scheme\": \"%s\",\n"
               "  \"workload\": \"%s\",\n  \"runs\": [\n",
               smoke ? "true" : "false", chaos_mode ? "true" : "false",
               std::thread::hardware_concurrency(), workers, active, cheaters,
               flags.u64("points"), flags.u64("samples"), flags.u64("epochs"),
               flags.str("scheme").c_str(), flags.str("workload").c_str());
  for (std::size_t i = 0; i < results.size(); ++i) {
    emit_json_run(json, results[i], i == 0);
  }
  std::fprintf(json, "\n  ],\n  \"%s\": %.3f",
               chaos_mode ? "chaos_heavy_vs_off_p99"
                          : "multi_loop_epoll_vs_single_loop_poll",
               ratio);
  if (have_uring_ratio) {
    std::fprintf(json, ",\n  \"uring_vs_epoll\": %.3f", uring_vs_epoll);
  }
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  if (chaos_mode) {
    std::printf("gridload: heavy chaos vs clean wire p99 = %.2fx\n", ratio);
  } else {
    std::printf("gridload: multi-loop epoll vs single-loop poll = %.2fx\n",
                ratio);
    if (have_uring_ratio) {
      std::printf("gridload: single-loop uring vs single-loop epoll = %.2fx\n",
                  uring_vs_epoll);
    }
  }
  std::printf("gridload: wrote %s\n", out_path.c_str());
  std::fflush(stdout);

  std::size_t honest_accusations = 0;
  std::size_t rejected = 0;
  bool incomplete = false;
  for (const RunResult& result : results) {
    honest_accusations += result.honest_accusations;
    rejected += result.rejected;
    incomplete = incomplete || result.deadline_hit ||
                 result.connect_failures > 0 || result.verdicts < active;
  }
  if (honest_accusations > 0) {
    std::fprintf(stderr,
                 "gridload: FAIL — %zu honest worker(s) accused\n",
                 honest_accusations);
    return cli::kExitRejected;
  }
  if (incomplete) {
    std::fprintf(stderr, "gridload: FAIL — run incomplete\n");
    return cli::kExitIncomplete;
  }
  if (chaos_mode && cheaters > 0 && rejected == 0) {
    // Chaos must degrade latency, never detection: a hostile wire that
    // lets every cheater walk means the protocol drowned, not the network.
    std::fprintf(stderr,
                 "gridload: FAIL — no cheater caught across the chaos "
                 "sweep (cheaters=%zu)\n",
                 cheaters);
    return cli::kExitIncomplete;
  }
  if (!chaos_mode && min_exchanges > 0 &&
      contender.exchanges_per_s < min_exchanges) {
    // The throughput floor is a clean-wire gate: heavy chaos is *supposed*
    // to be slow.
    std::fprintf(stderr,
                 "gridload: FAIL — %.1f exchanges/s below the %.1f floor\n",
                 contender.exchanges_per_s, min_exchanges);
    return cli::kExitIncomplete;
  }
  return cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // Thousands of sockets churning means writes into freshly-closed peers
  // are routine; they must come back as EPIPE, not kill the harness.
  std::signal(SIGPIPE, SIG_IGN);
  // --smoke is a bare switch (CI muscle memory from the bench binaries);
  // peel it off before the "--flag value" parser sees it.
  bool smoke = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  const std::map<std::string, std::string> spec{
      {"connect", ""},
      {"workers", "2000"},
      {"active", "0"},
      {"cheaters", "auto"},
      {"points", "4"},
      {"samples", "1"},
      {"epochs", "1"},
      {"epoch-inflight", "1"},
      {"scheme", "cbs"},
      {"workload", "test"},
      {"seed", "1"},
      {"io-threads", "4"},
      {"engine", "auto"},
      {"idle-timeout-ms", "1000"},
      {"max-retries", "2"},
      {"deadline-ms", "180000"},
      {"min-exchanges-per-s", "0"},
      {"chaos", "0"},
      {"chaos-seed", "0"},
      {"shed-watermark", "0"},
      {"evict-after-ms", "0"},
      {"max-runtime-s", "900"},
      {"out", "BENCH_grid.json"},
  };
  std::optional<cli::Flags> flags;
  try {
    flags.emplace(static_cast<int>(args.size()), args.data(), spec);
  } catch (const ugc::Error& error) {
    std::fprintf(stderr, "gridload: %s (try --help)\n", error.what());
    return cli::kExitUsage;
  }
  if (flags->help()) {
    flags->print_usage(
        "gridload [--smoke]",
        "Load-test harness: drives --workers in-process scripted workers "
        "(honest + --cheaters) against a supervisor — self-hosted sweep "
        "over poll/epoll/multi-loop configs emitting BENCH_grid.json, or "
        "an external gridd via --connect. --smoke shrinks the population "
        "and enforces the CI gates; --chaos 1 sweeps WAN fault levels "
        "(off/light/heavy) instead of engines; --epochs N with --scheme "
        "pipelined-cbs streams per-epoch commitments (cheaters become "
        "mid-run defectors; BENCH_grid.json gains wasted-epoch columns); "
        "--max-runtime-s bounds the whole process with a state-dumping "
        "watchdog.");
    return cli::kExitOk;
  }
  try {
    return run_gridload(*flags, smoke);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gridload: %s\n", error.what());
    return cli::kExitError;
  }
}
