// gridd — the uncheatable-grid supervisor daemon.
//
// Listens for gridworker connections, authenticates each with the
// challenge–response handshake (auth/handshake.h), registers it as an
// assignment slot under its durable worker id — refusing identities whose
// persistent reputation bans them — partitions the domain, and drives the
// full verification protocol — commit, sample, verify, accuse — over real
// TCP through the same SupervisorNode the simulated grid runs. When every
// task has settled it prints a per-task verdict log, a per-worker
// reputation summary, and exits with a status reflecting the outcome:
//
//   0  every task accepted
//   2  at least one task rejected (a cheater was caught)
//   3  at least one task aborted / never settled
//   1  runtime failure, 64 usage error
//
// Quickstart (three honest workers, one cheater — see README "Running a
// real grid"):
//
//   gridd --port 7001 --workers 3 --workload keysearch --scheme cbs &
//   gridworker --connect 127.0.0.1:7001 &
//   gridworker --connect 127.0.0.1:7001 &
//   gridworker --connect 127.0.0.1:7001 --cheat semi-honest:0.5 &
//   wait

#include <algorithm>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/cli.h"
#include "grid/chaos.h"
#include "grid/supervisor_node.h"
#include "net/tcp_transport.h"
#include "store/durable_ledger.h"

namespace {

using namespace ugc;

int run_gridd(const cli::Flags& flags) {
  // Engine probe: e2e scripts ask "can this kernel construct <backend>?"
  // before pinning a whole run to it (tests/e2e/loopback_grid.sh skips its
  // uring leg when this exits nonzero). Exit 0 = constructible here.
  if (const std::string probe = flags.str("probe-engine"); !probe.empty()) {
    const net::EngineBackend backend = net::parse_engine_backend(probe);
    const bool supported =
        backend == net::EngineBackend::kUring   ? net::uring_supported()
        : backend == net::EngineBackend::kEpoll ? net::epoll_supported()
                                                : true;  // auto/poll
    std::printf("gridd: engine %s %s\n", probe.c_str(),
                supported ? "supported" : "unsupported");
    return supported ? cli::kExitOk : cli::kExitError;
  }

  // Reputation outlives the process when --state-dir is set: the ledger's
  // Beta posteriors are keyed by durable worker id and loaded back on the
  // next start, so a ban sticks across restarts.
  store::ReputationParams reputation_params;
  reputation_params.ban_threshold = flags.f64("ban-threshold");
  reputation_params.min_observations = flags.u64("min-observations");
  const std::string state_dir = flags.str("state-dir");
  store::DurableReputationLedger ledger(
      reputation_params, state_dir.empty()
                             ? store::make_memory_reputation_store()
                             : store::make_file_reputation_store(state_dir));
  std::printf("gridd: reputation %s records=%zu banned=%zu\n",
              state_dir.empty() ? "in-memory" : state_dir.c_str(),
              ledger.size(), ledger.banned_count());

  net::TcpTransportOptions options;
  options.quiescence_timeout_ms = flags.u64("idle-timeout-ms");
  options.io_threads = static_cast<unsigned>(flags.u64("io-threads"));
  options.engine = net::parse_engine_backend(flags.str("engine"));
  options.quiescence.adaptive = flags.u64("adaptive-idle") != 0;
  options.quiescence.floor_ms = flags.u64("idle-floor-ms");
  options.quiescence.ceiling_ms = flags.u64("idle-ceiling-ms");
  options.shed_watermark = flags.u64("shed-watermark");
  options.evict_stalled_after_ms = flags.u64("evict-after-ms");
  const std::string chaos_level = flags.str("chaos");
  if (chaos_level != "off") {
    options.chaos = make_chaos_plan(chaos_level, flags.u64("chaos-seed"));
    std::printf("gridd: chaos level=%s seed=%" PRIu64 "\n",
                chaos_level.c_str(), options.chaos->seed);
  }
  net::TcpTransport transport(options);
  net::AuthOptions auth_options;
  auth_options.is_banned = [&ledger](const auth::WorkerId& id) {
    return ledger.banned(id);
  };
  transport.require_auth(std::move(auth_options));
  const std::uint64_t port = flags.u64("port");
  check(port <= 65535, "--port ", flags.str("port"),
        " out of range (0 = ephemeral, else 1-65535)");
  transport.listen(flags.str("host"), static_cast<std::uint16_t>(port));
  // io_stats().engine is the *resolved* backend: under --engine auto this
  // says which of uring/epoll/poll actually got constructed.
  const net::TcpIoStats boot = transport.io_stats();
  std::printf("gridd: listening on %s:%u engine=%s io_loops=%u\n",
              flags.str("host").c_str(), transport.port(),
              boot.engine.c_str(), boot.io_loops);
  std::fflush(stdout);

  // Registration: a connection becomes an assignment slot once its proof
  // verifies (the transport refuses bad proofs, banned identities, and
  // anything pre-proof before this fires). After the grid starts, a proof
  // from an already-registered durable identity is a reconnect: the slot
  // re-aims at the fresh connection (SupervisorNode::replace_slot) so retry
  // traffic reaches the surviving worker instead of the dead socket.
  const std::size_t worker_count = flags.u64("workers");
  std::vector<GridNodeId> slots;
  std::map<std::uint32_t, auth::AuthInfo> identities;
  std::map<auth::WorkerId, std::size_t> slot_of;
  SupervisorNode* supervisor_ptr = nullptr;
  transport.on_peer_authenticated = [&](GridNodeId peer,
                                        const auth::AuthInfo& info) {
    if (supervisor_ptr != nullptr) {
      const auto it = slot_of.find(info.worker_id);
      if (it == slot_of.end()) {
        std::printf("gridd: peer %u agent=%s id=%s arrived mid-run with no "
                    "slot, ignoring\n",
                    peer.value, info.agent.c_str(),
                    info.worker_id.prefix().c_str());
        std::fflush(stdout);
        return;
      }
      // With the transport the node also replays an EpochResume + fresh
      // assignment, so a pipelined worker restarts at the verified frontier
      // instead of epoch 0.
      supervisor_ptr->replace_slot(it->second, peer, &transport);
      identities[peer.value] = info;
      std::printf("gridd: worker %u reconnected agent=%s id=%s slot=%zu\n",
                  peer.value, info.agent.c_str(),
                  info.worker_id.prefix().c_str(), it->second);
      std::fflush(stdout);
      return;
    }
    slot_of[info.worker_id] = slots.size();
    slots.push_back(peer);
    identities[peer.value] = info;
    std::printf("gridd: worker %u registered agent=%s id=%s trust=%.2f "
                "(%zu/%zu)\n",
                peer.value, info.agent.c_str(), info.worker_id.prefix().c_str(),
                ledger.trust(info.worker_id), slots.size(), worker_count);
    std::fflush(stdout);
  };
  transport.on_auth_refused = [&](GridNodeId peer,
                                  auth::HandshakeStatus status,
                                  const auth::AuthInfo& info) {
    if (status == auth::HandshakeStatus::kBanned) {
      std::printf("gridd: refused peer %u status=%s agent=%s id=%s "
                  "trust=%.2f\n",
                  peer.value, auth::to_string(status), info.agent.c_str(),
                  info.worker_id.prefix().c_str(),
                  ledger.trust(info.worker_id));
    } else {
      std::printf("gridd: refused peer %u status=%s\n", peer.value,
                  auth::to_string(status));
    }
    std::fflush(stdout);
  };
  transport.on_peer_disconnected = [&](GridNodeId peer) {
    std::printf("gridd: peer %u disconnected\n", peer.value);
    std::fflush(stdout);
  };
  transport.run([&] { return slots.size() >= worker_count; });

  SupervisorNode::Plan plan;
  plan.domain = Domain(flags.u64("domain-begin"), flags.u64("domain-end"));
  plan.workload = flags.str("workload");
  plan.workload_seed = flags.u64("workload-seed");
  plan.scheme.name = flags.str("scheme");
  if (const std::uint64_t samples = flags.u64("samples"); samples > 0) {
    plan.scheme.cbs.sample_count = samples;
    plan.scheme.nicbs.sample_count = samples;
    plan.scheme.naive.sample_count = samples;
  }
  plan.scheme.pipeline.epochs = flags.u64("epochs");
  plan.scheme.pipeline.samples_per_epoch = flags.u64("epoch-samples");
  plan.scheme.pipeline.window_epochs = flags.u64("epoch-window");
  plan.scheme.pipeline.max_inflight =
      std::max<std::size_t>(1, flags.u64("epoch-inflight"));
  plan.seed = flags.u64("seed");
  plan.pump_threads = static_cast<unsigned>(flags.u64("pump-threads"));
  plan.max_task_retries = flags.u64("max-retries");

  SupervisorNode supervisor(plan, slots);
  supervisor_ptr = &supervisor;
  transport.add_local(supervisor);
  supervisor.start(transport);
  transport.run([&] { return supervisor.done(); });
  transport.close_all();  // drains the final verdict frames

  // Per-task log, then per-worker reputation — folded into the durable
  // ledger under each worker's proven identity, so standing (and bans)
  // carry to the next run.
  struct WorkerTally {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t aborted = 0;
  };
  std::map<std::uint32_t, WorkerTally> tallies;
  std::size_t accepted = 0, rejected = 0, aborted = 0;
  const auto identity_of = [&](std::uint32_t peer) -> const auth::AuthInfo& {
    static const auth::AuthInfo unknown{auth::WorkerId{}, "?"};
    const auto it = identities.find(peer);
    return it != identities.end() ? it->second : unknown;
  };
  for (const SupervisorNode::TaskOutcome& outcome : supervisor.outcomes()) {
    const auth::AuthInfo& who = identity_of(outcome.peer.value);
    std::printf("gridd: verdict task=%" PRIu64
                " peer=%u agent=%s id=%s status=%s detail=\"%s\"\n",
                outcome.task.value, outcome.peer.value, who.agent.c_str(),
                who.worker_id.prefix().c_str(),
                to_string(outcome.verdict.status),
                outcome.verdict.detail.c_str());
    WorkerTally& tally = tallies[outcome.peer.value];
    if (outcome.verdict.status == VerdictStatus::kAborted) {
      ++aborted;
      ++tally.aborted;
      continue;  // an abort is not an accusation: reputation unchanged
    }
    const bool ok = outcome.verdict.accepted();
    ok ? ++accepted : ++rejected;
    ok ? ++tally.accepted : ++tally.rejected;
    ledger.record(identity_of(outcome.peer.value).worker_id, ok);
  }
  for (const auto& [peer, tally] : tallies) {
    const auth::AuthInfo& who = identity_of(peer);
    std::printf("gridd: worker %u agent=%s id=%s accepted=%zu rejected=%zu "
                "aborted=%zu trust=%.2f observations=%" PRIu64
                " flagged=%s banned=%s\n",
                peer, who.agent.c_str(), who.worker_id.prefix().c_str(),
                tally.accepted, tally.rejected, tally.aborted,
                ledger.trust(who.worker_id),
                ledger.observations(who.worker_id),
                tally.rejected > 0 ? "yes" : "no",
                ledger.banned(who.worker_id) ? "yes" : "no");
  }
  const net::TcpIoStats io = transport.io_stats();
  std::printf("gridd: summary scheme=%s workload=%s tasks=%zu accepted=%zu "
              "rejected=%zu aborted=%zu reassigned=%" PRIu64
              " verification_evals=%" PRIu64 " stale_frames=%" PRIu64
              " bytes=%" PRIu64
              " refused=%" PRIu64 " engine=%s io_loops=%u "
              "read_calls=%" PRIu64 " write_calls=%" PRIu64
              " frames_per_write=%.2f "
              "write_queue_hwm=%zu undecodable=%" PRIu64 " truncated=%" PRIu64
              " shed=%" PRIu64 " evicted=%" PRIu64 " idle_timeout_ms=%" PRIu64
              "\n",
              flags.str("scheme").c_str(), flags.str("workload").c_str(),
              accepted + rejected + aborted, accepted, rejected, aborted,
              supervisor.tasks_reassigned(),
              supervisor.verification_evaluations(),
              supervisor.stale_frames_dropped(),
              transport.stats().total_bytes, io.handshakes_refused,
              io.engine.c_str(), io.io_loops, io.read_calls, io.write_calls,
              io.frames_per_write_mean, io.write_queue_hwm,
              io.frames_undecodable, io.streams_truncated, io.frames_shed,
              io.peers_evicted, io.quiescence_timeout_ms);
  if (options.chaos.has_value()) {
    std::printf("gridd: chaos accept_resets=%" PRIu64 " disconnects=%" PRIu64
                " frames_delayed=%" PRIu64 " read_stalls=%" PRIu64 "\n",
                io.chaos_accept_resets, io.chaos_disconnects,
                io.chaos_frames_delayed, io.chaos_read_stalls);
  }
  std::fflush(stdout);

  if (rejected > 0) {
    return cli::kExitRejected;
  }
  if (aborted > 0) {
    return cli::kExitIncomplete;
  }
  return cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // A worker vanishing mid-write must surface as EPIPE on the send path
  // (counted, peer dropped), never as a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
  const std::map<std::string, std::string> spec{
      {"host", "127.0.0.1"},
      {"port", "0"},
      {"workers", "3"},
      {"workload", "test"},
      {"workload-seed", "1"},
      {"scheme", "cbs"},
      {"samples", "0"},
      {"epochs", "1"},
      {"epoch-samples", "8"},
      {"epoch-window", "4"},
      {"epoch-inflight", "1"},
      {"domain-begin", "0"},
      {"domain-end", "3072"},
      {"seed", "1"},
      {"pump-threads", "1"},
      {"max-retries", "2"},
      {"idle-timeout-ms", "1000"},
      {"adaptive-idle", "0"},
      {"idle-floor-ms", "100"},
      {"idle-ceiling-ms", "10000"},
      {"shed-watermark", "0"},
      {"evict-after-ms", "0"},
      {"chaos", "off"},
      {"chaos-seed", "1"},
      {"io-threads", "1"},
      {"engine", "auto"},
      {"probe-engine", ""},
      {"state-dir", ""},
      {"ban-threshold", "0.5"},
      {"min-observations", "2"},
  };
  std::optional<cli::Flags> flags;
  try {
    flags.emplace(argc, argv, spec);
  } catch (const ugc::Error& error) {
    std::fprintf(stderr, "gridd: %s (try --help)\n", error.what());
    return cli::kExitUsage;
  }
  if (flags->help()) {
    flags->print_usage(
        "gridd",
        "Supervisor daemon: authenticates and registers --workers "
        "gridworkers, assigns --workload over [--domain-begin, "
        "--domain-end) under --scheme, verifies over TCP, prints verdicts, "
        "persists reputation in --state-dir, and exits 0/2/3.");
    return cli::kExitOk;
  }
  try {
    return run_gridd(*flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gridd: %s\n", error.what());
    return cli::kExitError;
  }
}
