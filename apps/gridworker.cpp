// gridworker — the uncheatable-grid participant client.
//
// Connects to a gridd supervisor (retrying with backoff while it comes
// up), proves its durable identity in the challenge–response handshake
// (auth/handshake.h; --identity-file persists the key so reputation
// accumulates across runs), and serves task assignments through the same
// ParticipantNode the simulated grid runs: resolve the workload, compute
// (honestly or per --cheat), commit, answer challenges, report screener
// hits, collect the verdict. If the connection drops mid-exchange it
// reconnects under the same identity (up to --reconnects attempts with
// exponential backoff) and resumes; it exits when the supervisor closes
// the connection with no work left unresolved.
//
//   --cheat none                      honest (default)
//   --cheat semi-honest[:r[,q]]       compute only an r-fraction, guess the
//                                     rest (each guess right with prob. q)
//   --cheat adaptive[:k[,r[,q]]]      honest for k accepted rounds, then
//                                     semi-honest — the sleeper agent
//   --cheat defector:x[,q]            honest below input x, guess from x on
//                                     — the mid-computation defector that
//                                     pipelined verification exists to catch
//   --screener faithful|suppress|fabricate   §2.2 malicious screener conduct
//
// Exit status: 0 clean run (even when caught cheating — the *supervisor*
// judges), 3 when the connection ended with a task still unresolved, 1 on
// runtime failure, 64 on usage errors.

#include <cinttypes>
#include <cstdio>
#include <chrono>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/cli.h"
#include "auth/identity.h"
#include "core/cheating.h"
#include "grid/participant_node.h"
#include "net/tcp_transport.h"

namespace {

using namespace ugc;

// Parses a --cheat spec ("semi-honest:0.5,0.2") into an HonestyPolicy.
std::shared_ptr<const HonestyPolicy> parse_cheat(const std::string& spec,
                                                 std::uint64_t seed) {
  const std::size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::vector<double> args;
  if (colon != std::string::npos) {
    std::string rest = spec.substr(colon + 1);
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string part = rest.substr(0, comma);
      char* end = nullptr;
      const double value = std::strtod(part.c_str(), &end);
      check(end != nullptr && *end == '\0' && !part.empty(),
            "--cheat: '", part, "' is not a number");
      args.push_back(value);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    }
  }
  const auto arg = [&args](std::size_t i, double fallback) {
    return i < args.size() ? args[i] : fallback;
  };

  if (kind.empty() || kind == "none" || kind == "honest") {
    return make_honest_policy();
  }
  if (kind == "semi-honest") {
    return make_semi_honest_cheater(
        {arg(0, 0.5), arg(1, 0.0), seed});
  }
  if (kind == "adaptive") {
    return make_adaptive_cheater(
        {static_cast<std::size_t>(arg(0, 3)), arg(1, 0.5), arg(2, 0.0),
         seed});
  }
  if (kind == "defector") {
    check(!args.empty(), "--cheat: defector needs the defection input, "
          "e.g. defector:2048[,q]");
    return make_defector_cheater(
        {static_cast<std::uint64_t>(args[0]), arg(1, 0.0), seed});
  }
  throw Error(concat("--cheat: unknown policy '", kind,
                     "' (none | semi-honest[:r[,q]] | adaptive[:k[,r[,q]]] | "
                     "defector:x[,q])"));
}

ScreenerConduct parse_conduct(const std::string& name) {
  if (name == "faithful") {
    return ScreenerConduct::kFaithful;
  }
  if (name == "suppress") {
    return ScreenerConduct::kSuppress;
  }
  if (name == "fabricate") {
    return ScreenerConduct::kFabricate;
  }
  throw Error(concat("--screener: unknown conduct '", name,
                     "' (faithful | suppress | fabricate)"));
}

// Fresh entropy for key generation (the identity must be unique per
// worker, so the deterministic --seed stream is exactly wrong for it).
auth::WorkerIdentity make_identity(const std::string& identity_file) {
  std::random_device device;
  Rng rng((static_cast<std::uint64_t>(device()) << 32) ^ device() ^
          static_cast<std::uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()));
  if (identity_file.empty()) {
    return auth::WorkerIdentity::generate(rng);  // ephemeral: one run only
  }
  return auth::load_or_create_identity(identity_file, rng);
}

int run_gridworker(const cli::Flags& flags) {
  const std::uint64_t seed = flags.u64("seed");
  ParticipantNode::Options options;
  options.policy = parse_cheat(flags.str("cheat"), seed);
  options.screener_conduct = parse_conduct(flags.str("screener"));
  options.conduct_seed = seed;
  ParticipantNode node(options);

  const auth::WorkerIdentity identity =
      make_identity(flags.str("identity-file"));

  net::TcpTransportOptions transport_options;
  transport_options.quiescence_timeout_ms = flags.u64("idle-timeout-ms");
  transport_options.engine = net::parse_engine_backend(flags.str("engine"));
  net::TcpTransport transport(transport_options);
  transport.use_identity(identity, flags.str("agent"));
  const GridNodeId self = transport.add_local(node);

  // Bounded connect retry: a worker is typically launched alongside its
  // supervisor, so losing the race to gridd's listen() must not be fatal.
  const auto [host, port] = cli::parse_endpoint(flags.str("connect"));
  const std::uint64_t retries = flags.u64("connect-retries");
  std::uint64_t backoff_ms = flags.u64("connect-backoff-ms");
  std::optional<GridNodeId> connected;
  for (std::uint64_t attempt = 0; !connected.has_value(); ++attempt) {
    try {
      connected = transport.connect(host, port);
    } catch (const net::SocketError& error) {
      if (attempt >= retries) {
        throw;
      }
      std::fprintf(stderr,
                   "gridworker %s: connect to %s:%u failed (%s); retry %"
                   PRIu64 "/%" PRIu64 " in %" PRIu64 " ms\n",
                   flags.str("agent").c_str(), host.c_str(), port,
                   error.what(), attempt + 1, retries, backoff_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, 2000);
    }
  }
  std::printf("gridworker %s: connected to %s:%u id=%s policy=%s\n",
              flags.str("agent").c_str(), host.c_str(), port,
              identity.id().prefix().c_str(), node.policy().name().c_str());
  std::fflush(stdout);

  // Serve until the supervisor hangs up: the protocol has no "grid over"
  // message — a real volunteer just loses the connection. If the link died
  // with a task still mid-exchange, the drop was a fault, not the grid
  // ending: reconnect with bounded backoff and resume under the same
  // durable identity (gridd re-aims our slot; the quiescence retry re-sends
  // the work, so in-flight session state is written off with on_crash()).
  bool supervisor_gone = false;
  transport.on_peer_disconnected = [&](GridNodeId) {
    supervisor_gone = true;
  };
  const std::uint64_t reconnects = flags.u64("reconnects");
  std::uint64_t reconnects_used = 0;
  for (;;) {
    transport.run([&] { return supervisor_gone; });
    // Settled = the supervisor hung up with nothing mid-exchange and at
    // least one verdict in hand: the grid ended, not the link. A cut
    // before ANY verdict is indistinguishable from a refusal, so it
    // retries too — a refused (banned) worker just burns its bounded
    // budget and exits incomplete as before.
    const bool settled =
        node.active_tasks() == 0 && !node.verdicts().empty();
    if (settled || reconnects_used >= reconnects) {
      break;
    }
    std::uint64_t reconnect_backoff_ms = flags.u64("connect-backoff-ms");
    std::optional<GridNodeId> again;
    while (!again.has_value() && reconnects_used < reconnects) {
      ++reconnects_used;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(reconnect_backoff_ms));
      reconnect_backoff_ms = std::min<std::uint64_t>(
          reconnect_backoff_ms * 2, 5000);
      try {
        again = transport.connect(host, port);
      } catch (const net::SocketError& error) {
        std::fprintf(stderr,
                     "gridworker %s: reconnect %" PRIu64 "/%" PRIu64
                     " failed (%s)\n",
                     flags.str("agent").c_str(), reconnects_used, reconnects,
                     error.what());
      }
    }
    if (!again.has_value()) {
      break;  // budget exhausted: exit below with the work unresolved
    }
    node.on_crash();  // in-flight sessions died with the old connection
    supervisor_gone = false;
    std::printf("gridworker %s: reconnected to %s:%u (attempt %" PRIu64
                "/%" PRIu64 ")\n",
                flags.str("agent").c_str(), host.c_str(), port,
                reconnects_used, reconnects);
    std::fflush(stdout);
  }

  if (node.verdicts().empty() && node.active_tasks() == 0) {
    // Disconnected before any task: the supervisor refused the handshake
    // (banned or failed proof) or shut down early.
    std::printf("gridworker %s: disconnected before any assignment "
                "(refused or supervisor gone)\n",
                flags.str("agent").c_str());
  }
  for (const auto& [task, verdict] : node.verdicts()) {
    std::printf("gridworker %s: task=%" PRIu64 " status=%s\n",
                flags.str("agent").c_str(), task.value,
                to_string(verdict.status));
  }
  const net::TcpIoStats io = transport.io_stats();
  std::printf("gridworker %s: done tasks=%zu unresolved=%zu "
              "evaluations=%" PRIu64 " bytes_sent=%" PRIu64
              " undecodable=%" PRIu64 " truncated=%" PRIu64 "\n",
              flags.str("agent").c_str(), node.verdicts().size(),
              node.active_tasks(), node.honest_evaluations(),
              transport.stats().bytes_sent(self), io.frames_undecodable,
              io.streams_truncated);
  std::fflush(stdout);
  // Incomplete = the connection ended with work unresolved: no verdict ever
  // arrived, or a task was still mid-exchange.
  return node.verdicts().empty() || node.active_tasks() > 0
             ? cli::kExitIncomplete
             : cli::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const std::map<std::string, std::string> spec{
      {"connect", "127.0.0.1:7001"},
      {"agent", "gridworker"},
      {"cheat", "none"},
      {"screener", "faithful"},
      {"seed", "1"},
      {"idle-timeout-ms", "1000"},
      {"engine", "auto"},
      {"identity-file", ""},
      {"connect-retries", "10"},
      {"connect-backoff-ms", "100"},
      {"reconnects", "5"},
  };
  std::optional<cli::Flags> flags;
  try {
    flags.emplace(argc, argv, spec);
  } catch (const ugc::Error& error) {
    std::fprintf(stderr, "gridworker: %s (try --help)\n", error.what());
    return cli::kExitUsage;
  }
  if (flags->help()) {
    flags->print_usage(
        "gridworker",
        "Participant client: connects to a gridd supervisor and serves "
        "verification-scheme exchanges, honestly or per --cheat.");
    return cli::kExitOk;
  }
  try {
    return run_gridworker(*flags);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "gridworker: %s\n", error.what());
    return cli::kExitError;
  }
}
