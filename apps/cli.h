#pragma once

// Tiny flag parser shared by the apps/ executables (gridd, gridworker).
// Flags are "--name value" pairs; unknown flags are fatal with a usage
// dump, matching what a systems operator expects from a daemon binary.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace ugc::cli {

// Exit codes shared by the apps. 0 and 1 keep their POSIX meanings; the
// grid-specific outcomes start at 2 so scripts can switch on them.
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;        // runtime failure (socket, ...)
inline constexpr int kExitRejected = 2;     // >=1 task verdict rejected
inline constexpr int kExitIncomplete = 3;   // >=1 task aborted / no verdict
inline constexpr int kExitUsage = 64;       // bad command line (EX_USAGE)

class Flags {
 public:
  // Parses "--name value" pairs. `spec` maps every known flag to its
  // default (also what --help prints). Throws ugc::Error on unknown or
  // valueless flags.
  Flags(int argc, char** argv,
        std::map<std::string, std::string> spec)
      : values_(std::move(spec)) {
    for (int i = 1; i < argc; ++i) {
      const std::string name = argv[i];
      if (name == "--help" || name == "-h") {
        help_ = true;
        continue;
      }
      check(name.size() > 2 && name.starts_with("--"),
            "expected a --flag, got '", name, "'");
      const auto it = values_.find(name.substr(2));
      check(it != values_.end(), "unknown flag '", name, "'");
      check(i + 1 < argc, "flag '", name, "' needs a value");
      it->second = argv[++i];
    }
  }

  bool help() const { return help_; }

  const std::string& str(const std::string& name) const {
    return values_.at(name);
  }

  std::uint64_t u64(const std::string& name) const {
    const std::string& raw = values_.at(name);
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(raw.c_str(), &end, 0);
    check(end != nullptr && *end == '\0' && !raw.empty(),
          "flag --", name, ": '", raw, "' is not an integer");
    return value;
  }

  double f64(const std::string& name) const {
    const std::string& raw = values_.at(name);
    char* end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    check(end != nullptr && *end == '\0' && !raw.empty(),
          "flag --", name, ": '", raw, "' is not a number");
    return value;
  }

  void print_usage(const char* program, const char* summary) const {
    std::fprintf(stderr, "usage: %s [--flag value ...]\n%s\n\nflags:\n",
                 program, summary);
    for (const auto& [name, fallback] : values_) {
      std::fprintf(stderr, "  --%-18s (default: %s)\n", name.c_str(),
                   fallback.empty() ? "\"\"" : fallback.c_str());
    }
  }

 private:
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

// Splits "host:port"; a bare "1234" means 127.0.0.1:1234. Validated with
// the same strictness as Flags::u64 — a typo'd port must be a usage error,
// not a confusing connection refusal.
inline std::pair<std::string, std::uint16_t> parse_endpoint(
    const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  const std::string host =
      colon == std::string::npos ? "127.0.0.1" : endpoint.substr(0, colon);
  const std::string port_text =
      colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  check(end != nullptr && *end == '\0' && !port_text.empty() &&
            port >= 1 && port <= 65535,
        "endpoint '", endpoint, "': '", port_text,
        "' is not a port (1-65535)");
  return {host, static_cast<std::uint16_t>(port)};
}

}  // namespace ugc::cli
